#ifndef KRCORE_CORE_VERIFY_H_
#define KRCORE_CORE_VERIFY_H_

#include <string>
#include <vector>

#include "core/krcore_types.h"
#include "graph/graph.h"
#include "similarity/similarity_oracle.h"

namespace krcore {

/// Ground-truth validation helpers used by tests, examples and the naive
/// oracle. All operate on original-graph vertex ids.

/// True iff the induced subgraph on `vertices` (sorted) is connected,
/// satisfies the structure constraint for `k` and the similarity constraint
/// under `oracle`. A violation description is written to *why when provided.
bool IsKrCore(const Graph& g, const SimilarityOracle& oracle, uint32_t k,
              const VertexSet& vertices, std::string* why = nullptr);

/// Structure constraint only: deg(u, S) >= k for all u in S.
bool SatisfiesStructure(const Graph& g, uint32_t k, const VertexSet& vertices);

/// Similarity constraint only: all pairs similar.
bool SatisfiesSimilarity(const SimilarityOracle& oracle,
                         const VertexSet& vertices);

}  // namespace krcore

#endif  // KRCORE_CORE_VERIFY_H_
