#ifndef KRCORE_CORE_NAIVE_ENUM_H_
#define KRCORE_CORE_NAIVE_ENUM_H_

#include "core/krcore_types.h"
#include "graph/graph.h"
#include "similarity/similarity_oracle.h"

namespace krcore {

/// The naive set-enumeration solution of Sec 4.1 (Algorithms 1 + 2), used as
/// the correctness oracle in tests: after the shared preprocessing, every
/// subset of each component is enumerated via bitmasks, validated against
/// both constraints plus connectivity, and the non-maximal results are
/// filtered. Exponential — components are limited to `max_component_size`
/// vertices (default 24) and the call aborts with ResourceExhausted beyond
/// that.
MaximalCoresResult EnumerateMaximalCoresNaive(const Graph& g,
                                              const SimilarityOracle& oracle,
                                              uint32_t k,
                                              uint32_t max_component_size = 24);

}  // namespace krcore

#endif  // KRCORE_CORE_NAIVE_ENUM_H_
