#include "core/size_bounds.h"

#include <algorithm>

#include "util/logging.h"

namespace krcore {

SizeBoundComputer::SizeBoundComputer(const ComponentContext& comp)
    : comp_(comp),
      in_h_(comp.size(), 0),
      dp_(comp.size(), 0),
      deg_(comp.size(), 0),
      color_(comp.size(), 0) {
  members_.reserve(comp.size());
  cascade_.reserve(comp.size());
}

uint64_t SizeBoundComputer::Naive(const SearchContext& ctx) const {
  return static_cast<uint64_t>(ctx.m_list().size()) + ctx.c_list().size();
}

uint64_t SizeBoundComputer::Color(const SearchContext& ctx) {
  const VertexId n = comp_.size();

  // Collect H = M ∪ C with dp = DP(u, H) (0 for M vertices by Eq. 1).
  members_.clear();
  for (VertexId u = 0; u < n; ++u) {
    VertexState s = ctx.state(u);
    if (s == VertexState::kInM || s == VertexState::kInC) {
      members_.push_back(u);
      in_h_[u] = 1;
      dp_[u] = (s == VertexState::kInC) ? ctx.dp_c(u) : 0;
    }
  }
  if (members_.empty()) return 0;

  // Welsh–Powell on the similarity graph: descending similarity degree ==
  // ascending dissimilarity count.
  std::stable_sort(members_.begin(), members_.end(),
                   [this](VertexId a, VertexId b) { return dp_[a] < dp_[b]; });

  // Greedy color assignment on the *complement* representation: color c is
  // usable for u iff every vertex already holding c is dissimilar to u,
  // i.e. color_total[c] == (u's dissimilar vertices holding c).
  constexpr uint32_t kUncolored = static_cast<uint32_t>(-1);
  for (VertexId u : members_) color_[u] = kUncolored;
  color_total_.clear();
  uint32_t num_colors = 0;
  for (VertexId u : members_) {
    dis_with_color_.assign(num_colors, 0);
    for (VertexId x : comp_.dissimilar[u]) {
      if (in_h_[x] && color_[x] != kUncolored) ++dis_with_color_[color_[x]];
    }
    uint32_t c = 0;
    while (c < num_colors && color_total_[c] != dis_with_color_[c]) ++c;
    if (c == num_colors) {
      ++num_colors;
      color_total_.push_back(0);
    }
    color_[u] = c;
    ++color_total_[c];
  }
  for (VertexId u : members_) in_h_[u] = 0;
  return num_colors;
}

uint64_t SizeBoundComputer::Kcore(const SearchContext& ctx) {
  return KkPrime(ctx, /*structure_k=*/0);
}

uint64_t SizeBoundComputer::ColorPlusKcore(const SearchContext& ctx) {
  return std::min(Color(ctx), Kcore(ctx));
}

uint64_t SizeBoundComputer::KkPrime(const SearchContext& ctx,
                                    uint32_t structure_k) {
  const VertexId n = comp_.size();

  // H = current M ∪ C. dp[u] = DP(u, H); by the similarity invariant (Eq. 1)
  // M vertices have dp 0 and C vertices have dp == dp_c(u).
  members_.clear();
  uint32_t max_dp = 0;
  for (VertexId u = 0; u < n; ++u) {
    VertexState s = ctx.state(u);
    if (s == VertexState::kInM || s == VertexState::kInC) {
      in_h_[u] = 1;
      dp_[u] = (s == VertexState::kInC) ? ctx.dp_c(u) : 0;
      deg_[u] = ctx.deg_mc(u);
      members_.push_back(u);
      max_dp = std::max(max_dp, dp_[u]);
    }
  }
  uint64_t h = members_.size();
  if (h == 0) return 0;

  // Buckets over dp with lazy (stale) entries: picking the max-dp vertex is
  // picking the minimum-similarity-degree vertex of H.
  if (buckets_.size() <= max_dp) buckets_.resize(max_dp + 1);
  for (uint32_t d = 0; d <= max_dp; ++d) buckets_[d].clear();
  for (VertexId u : members_) buckets_[dp_[u]].push_back(u);

  uint64_t k_prime = 0;
  int64_t cursor = max_dp;
  uint64_t removed = 0;
  while (removed < members_.size()) {
    // Find the current maximum-dp live vertex.
    while (cursor >= 0) {
      auto& bucket = buckets_[cursor];
      while (!bucket.empty() &&
             (!in_h_[bucket.back()] ||
              dp_[bucket.back()] != static_cast<uint32_t>(cursor))) {
        bucket.pop_back();  // stale
      }
      if (!bucket.empty()) break;
      --cursor;
    }
    if (cursor < 0) break;
    VertexId u = buckets_[cursor].back();
    buckets_[cursor].pop_back();

    // degsim(u) w.r.t. the remaining H certifies the next k' level
    // (Algorithm 6 line 3); k' is monotone under peeling.
    k_prime = std::max(k_prime, (h - 1) - dp_[u]);

    // KK'coreUpdate: remove u, then cascade structure-constraint violations
    // at this k' level.
    cascade_.assign(1, u);
    while (!cascade_.empty()) {
      VertexId x = cascade_.back();
      cascade_.pop_back();
      if (!in_h_[x]) continue;
      in_h_[x] = 0;
      --h;
      ++removed;
      for (VertexId y : comp_.dissimilar[x]) {
        if (in_h_[y]) {
          --dp_[y];
          buckets_[dp_[y]].push_back(y);
        }
      }
      if (structure_k > 0) {
        for (VertexId y : comp_.graph.neighbors(x)) {
          if (in_h_[y] && deg_[y]-- == structure_k) cascade_.push_back(y);
        }
      }
    }
  }
  // in_h_ is all-zero again (every member was removed exactly once).
  return k_prime + 1;
}

uint64_t SizeBoundComputer::Compute(const SearchContext& ctx,
                                    SizeBoundKind kind) {
  switch (kind) {
    case SizeBoundKind::kNaive:
      return Naive(ctx);
    case SizeBoundKind::kColor:
      return Color(ctx);
    case SizeBoundKind::kKcore:
      return Kcore(ctx);
    case SizeBoundKind::kColorPlusKcore:
      return ColorPlusKcore(ctx);
    case SizeBoundKind::kDoubleKcore:
      return KkPrime(ctx, ctx.k());
  }
  KRCORE_CHECK(false) << "unreachable bound kind";
  return 0;
}

uint64_t NaiveSizeBound(const SearchContext& ctx) {
  return SizeBoundComputer(ctx.component()).Naive(ctx);
}
uint64_t ColorSizeBound(const SearchContext& ctx) {
  return SizeBoundComputer(ctx.component()).Color(ctx);
}
uint64_t KcoreSizeBound(const SearchContext& ctx) {
  return SizeBoundComputer(ctx.component()).Kcore(ctx);
}
uint64_t ColorPlusKcoreSizeBound(const SearchContext& ctx) {
  return SizeBoundComputer(ctx.component()).ColorPlusKcore(ctx);
}
uint64_t KkPrimeSizeBound(const SearchContext& ctx, uint32_t structure_k) {
  return SizeBoundComputer(ctx.component()).KkPrime(ctx, structure_k);
}
uint64_t ComputeSizeBound(const SearchContext& ctx, SizeBoundKind kind) {
  return SizeBoundComputer(ctx.component()).Compute(ctx, kind);
}

}  // namespace krcore
