#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "util/failpoint.h"
#include "util/logging.h"

namespace krcore {

namespace {
// Identifies the pool (and worker slot) the current thread belongs to, so
// Submit from inside a task lands on the submitting worker's own deque.
thread_local TaskPool* tls_pool = nullptr;
thread_local uint32_t tls_worker = 0;
}  // namespace

uint32_t ResolveThreadCount(uint32_t requested, uint32_t hardware) {
  if (requested != 0) return requested;
  return hardware == 0 ? 1 : hardware;
}

uint32_t ParallelOptions::Resolve() const {
  return ResolveThreadCount(num_threads, std::thread::hardware_concurrency());
}

TaskPool::TaskPool(uint32_t num_threads)
    : queues_(std::max(1u, num_threads)) {
  workers_.reserve(queues_.size());
  for (uint32_t i = 0; i < queues_.size(); ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    KRCORE_DCHECK(pending_ == 0);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void TaskPool::Submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint32_t slot;
    if (tls_pool == this) {
      slot = tls_worker;
      queues_[slot].push_front(std::move(task));
    } else {
      slot = static_cast<uint32_t>(next_queue_++ % queues_.size());
      queues_[slot].push_back(std::move(task));
    }
    ++pending_;
    ++submitted_;
  }
  work_cv_.notify_one();
}

bool TaskPool::PopTask(uint32_t index, Task* task) {
  if (!queues_[index].empty()) {
    *task = std::move(queues_[index].front());
    queues_[index].pop_front();
    return true;
  }
  for (size_t off = 1; off < queues_.size(); ++off) {
    auto& victim = queues_[(index + off) % queues_.size()];
    if (!victim.empty()) {
      *task = std::move(victim.back());
      victim.pop_back();
      ++stolen_;
      return true;
    }
  }
  return false;
}

void TaskPool::WorkerLoop(uint32_t index) {
  tls_pool = this;
  tls_worker = index;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Task task;
    if (PopTask(index, &task)) {
      lock.unlock();
      // Not a fault: a firing stall yields the worker's timeslice before it
      // runs the task, perturbing the schedule so the chaos/TSan runs
      // explore orderings (stolen tasks, reversed completion) that an idle
      // machine would rarely produce. Determinism of results under any
      // schedule is exactly what the equivalence tests lock down.
      if (Failpoints::ShouldFail("parallel/worker_stall")) {
        std::this_thread::yield();
      }
      task();
      task = nullptr;  // release captures before re-locking
      lock.lock();
      if (--pending_ == 0) done_cv_.notify_all();
      continue;
    }
    if (stop_) break;
    work_cv_.wait(lock);
  }
  tls_pool = nullptr;
}

void TaskPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

uint64_t TaskPool::tasks_spawned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

uint64_t TaskPool::tasks_stolen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stolen_;
}

bool TaskPool::BacklogLow() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t queued = 0;
  for (const auto& q : queues_) queued += q.size();
  return queued < 2 * queues_.size();
}

void ParallelFor(uint32_t num_threads, size_t count,
                 const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (num_threads <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };
  size_t spawned =
      std::min<size_t>(num_threads, count) - 1;  // this thread works too
  std::vector<std::thread> threads;
  threads.reserve(spawned);
  for (size_t t = 0; t < spawned; ++t) threads.emplace_back(worker);
  worker();
  for (auto& t : threads) t.join();
}

}  // namespace krcore
