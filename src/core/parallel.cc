#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace krcore {

uint32_t ParallelOptions::Resolve() const {
  if (num_threads != 0) return num_threads;
  uint32_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelFor(uint32_t num_threads, size_t count,
                 const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (num_threads <= 1 || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };
  size_t spawned =
      std::min<size_t>(num_threads, count) - 1;  // this thread works too
  std::vector<std::thread> threads;
  threads.reserve(spawned);
  for (size_t t = 0; t < spawned; ++t) threads.emplace_back(worker);
  worker();
  for (auto& t : threads) t.join();
}

}  // namespace krcore
