#include "core/clique_method.h"

#include <algorithm>

#include "clique/bron_kerbosch.h"
#include "core/result_set.h"
#include "graph/connectivity.h"
#include "graph/graph_builder.h"
#include "kcore/core_decomposition.h"
#include "util/logging.h"

namespace krcore {

MaximalCoresResult EnumerateByCliqueMethod(const Graph& g,
                                           const SimilarityOracle& oracle,
                                           const CliqueMethodOptions& options) {
  MaximalCoresResult result;
  Timer timer;
  if (options.k == 0) {
    result.status = Status::InvalidArgument("k must be a positive integer");
    return result;
  }

  // Sec 3's improved clique-based method, faithfully: (i) compute the k-core
  // of G first; (ii) delete edges between dissimilar endpoints inside it;
  // (iii) take the connected subgraphs (<without> re-running the k-core —
  // that re-coring is part of our Algorithm 1 pipeline, not of Clique+);
  // (iv) per subgraph, materialize the similarity graph over all vertex
  // pairs and enumerate its maximal cliques; (v) the k-core of the
  // structure subgraph induced by each maximal clique yields candidate
  // (k,r)-cores; (vi) filter non-maximal results.
  std::vector<VertexId> core_vertices = KCoreVertices(g, options.k);
  if (core_vertices.empty()) {
    result.status = Status::OK();
    result.stats.seconds = timer.ElapsedSeconds();
    return result;
  }

  // Edge-filtered structure graph restricted to the k-core.
  std::vector<char> in_core(g.num_vertices(), 0);
  for (VertexId u : core_vertices) in_core[u] = 1;
  GraphBuilder filtered(g.num_vertices());
  for (VertexId u : core_vertices) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v && in_core[v] && oracle.Similar(u, v)) filtered.AddEdge(u, v);
    }
  }
  Graph structure = filtered.Build();

  auto components = ComponentsOfSubset(structure, core_vertices);

  // Pairwise-similarity budget guard (same role as the pipeline's; 0 means
  // unlimited).
  uint64_t pair_budget = 0;
  for (const auto& comp : components) {
    const uint64_t sz = comp.size();
    pair_budget += sz * (sz - 1) / 2;
  }
  if (options.preprocess.max_pair_budget > 0 &&
      pair_budget > options.preprocess.max_pair_budget) {
    result.status = Status::ResourceExhausted(
        "clique method similarity-graph budget exceeded");
    return result;
  }

  ResultSet results;
  for (const auto& comp : components) {
    ++result.stats.components;
    if (comp.size() <= options.k) continue;  // cannot host a (k,r)-core
    if (options.deadline.Expired()) {
      result.status = Status::DeadlineExceeded("clique method budget expired");
      break;
    }

    // Materialize this subgraph's similarity graph (all pairs — the
    // expensive step the paper attributes Clique+'s cost to).
    auto induced = BuildInducedSubgraph(structure, comp);
    const VertexId n = induced.graph.num_vertices();
    GraphBuilder sim_builder(n);
    for (VertexId a = 0; a < n; ++a) {
      for (VertexId b = a + 1; b < n; ++b) {
        if (oracle.Similar(induced.to_parent[a], induced.to_parent[b])) {
          sim_builder.AddEdge(a, b);
        }
      }
    }
    Graph sim_graph = sim_builder.Build();

    CliqueOptions copts;
    copts.min_size = static_cast<size_t>(options.k) + 1;
    copts.deadline = options.deadline;
    Status s = EnumerateMaximalCliques(
        sim_graph, copts, [&](const std::vector<VertexId>& clique) {
          ++result.stats.search_nodes;
          // k-core of the structure subgraph induced by the clique, then
          // connected components: each is a candidate (k,r)-core.
          auto clique_induced = BuildInducedSubgraph(induced.graph, clique);
          auto kcore = KCoreVertices(clique_induced.graph, options.k);
          if (kcore.empty()) return true;
          auto pieces = ComponentsOfSubset(clique_induced.graph, kcore);
          for (const auto& piece : pieces) {
            ++result.stats.emitted_candidates;
            VertexSet parent_ids;
            parent_ids.reserve(piece.size());
            for (VertexId local : piece) {
              parent_ids.push_back(
                  induced.to_parent[clique_induced.to_parent[local]]);
            }
            std::sort(parent_ids.begin(), parent_ids.end());
            results.Insert(std::move(parent_ids));
          }
          return true;
        });
    if (!s.ok()) {
      result.status = s;
      break;
    }
  }

  results.FilterNonMaximal();
  result.cores = results.TakeSorted();
  result.stats.maximal_found = result.cores.size();
  result.stats.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace krcore
