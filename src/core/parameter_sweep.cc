#include "core/parameter_sweep.h"

#include <algorithm>
#include <memory>

#include "core/parallel.h"
#include "util/timer.h"

namespace krcore {
namespace {

/// Builds the PipelineOptions the sweep's shared preparations run with,
/// mirroring what the cold mining entry points construct internally.
PipelineOptions BasePipelineOptions(const SweepOptions& options, uint32_t k) {
  const bool enumerate = options.mode == SweepMode::kEnumerate;
  PipelineOptions pipe;
  pipe.k = k;
  pipe.preprocess = enumerate ? options.enumerate.preprocess
                              : options.maximum.preprocess;
  pipe.deadline =
      enumerate ? options.enumerate.deadline : options.maximum.deadline;
  return pipe;
}

/// Mines one cell on components already extracted at `k`. `derive_seconds`
/// is the cell-specific substrate time (0 for the base-k cell, whose shared
/// pair sweep is accounted at the sweep level instead).
void MineCell(const std::vector<ComponentContext>& components, uint32_t k,
              double r, bool derived, double derive_seconds,
              const SweepOptions& options, SweepCellResult* out) {
  out->k = k;
  out->r = r;
  out->derived = derived;
  if (options.mode == SweepMode::kEnumerate) {
    EnumOptions cell = options.enumerate;
    cell.k = k;
    out->enum_result = EnumerateMaximalCores(components, cell);
  } else {
    MaxOptions cell = options.maximum;
    cell.k = k;
    out->max_result = FindMaximumCore(components, cell);
  }
  MiningStats& stats = options.mode == SweepMode::kEnumerate
                           ? out->enum_result.stats
                           : out->max_result.stats;
  stats.prepare_derivations = derived ? 1 : 0;
  stats.prepare_seconds = derive_seconds;
  stats.seconds += derive_seconds;
}

/// Marks a whole cell failed (substrate never materialized).
void FailCell(uint32_t k, double r, const Status& status,
              const SweepOptions& options, SweepCellResult* out) {
  out->k = k;
  out->r = r;
  if (options.mode == SweepMode::kEnumerate) {
    out->enum_result.status = status;
  } else {
    out->max_result.status = status;
  }
}

/// Runs one cell whose substrate comes from `base`: the base-k cell mines
/// the cached components in place, higher k derive their own (task-local)
/// workspace first.
void RunReusedCell(const PreparedWorkspace& base, uint32_t k, double r,
                   const SweepOptions& options, SweepCellResult* out) {
  if (k == base.k) {
    MineCell(base.components, k, r, /*derived=*/false, 0.0, options, out);
    return;
  }
  Timer timer;
  PreparedWorkspace derived;
  Status s = DeriveWorkspace(base, k, BasePipelineOptions(options, k),
                             &derived);
  if (!s.ok()) {
    FailCell(k, r, s, options, out);
    return;
  }
  MineCell(derived.components, k, r, /*derived=*/true, timer.ElapsedSeconds(),
           options, out);
}

/// Prepared-base sweep shared by the public entry points: mines one cell
/// per k into cells_out[i]. With `pool` non-null the cells run as tasks
/// (base is read-only and outlives the pool's Wait()).
void SweepGroup(const PreparedWorkspace& base,
                const std::vector<uint32_t>& ks, double r,
                const SweepOptions& options, SweepCellResult* cells_out,
                TaskPool* pool) {
  for (size_t i = 0; i < ks.size(); ++i) {
    if (pool != nullptr) {
      const PreparedWorkspace* base_ptr = &base;
      uint32_t k = ks[i];
      SweepCellResult* out = &cells_out[i];
      const SweepOptions* opts = &options;
      pool->Submit([base_ptr, k, r, opts, out] {
        RunReusedCell(*base_ptr, k, r, *opts, out);
      });
    } else {
      RunReusedCell(base, ks[i], r, options, &cells_out[i]);
    }
  }
}

}  // namespace

SweepResult RunParameterSweep(const Graph& g, const SimilarityOracle& oracle,
                              const SweepGrid& grid,
                              const SweepOptions& options) {
  SweepResult result;
  Timer timer;
  if (grid.ks.empty() || grid.rs.empty()) {
    result.status =
        Status::InvalidArgument("sweep grid needs at least one k and one r");
    return result;
  }
  const uint32_t k_min = *std::min_element(grid.ks.begin(), grid.ks.end());
  if (k_min == 0) {
    // Rejected for the whole grid in both reuse modes: with reuse the base
    // would be prepared at k_min and fail, poisoning every cell, while cold
    // mode would fail only the k=0 cells — an inconsistency the boundary
    // tests lock out.
    result.status = Status::InvalidArgument(
        "sweep grid contains k = 0; k must be a positive integer");
    return result;
  }
  const size_t per_group = grid.ks.size();
  result.cells.resize(grid.num_cells());

  const uint32_t threads = options.parallel.Resolve();
  // Bases live here so cell tasks can read them until the pool drains; the
  // oracles likewise (SimilarityOracle is a value rebound per r).
  std::vector<PreparedWorkspace> bases(grid.rs.size());
  std::vector<double> base_seconds(grid.rs.size(), 0.0);
  std::vector<Status> base_status(grid.rs.size(), Status::OK());

  auto RunGroup = [&](size_t ri, TaskPool* pool) {
    SweepCellResult* cells = &result.cells[ri * per_group];
    const double r = grid.rs[ri];
    if (!options.reuse_preprocessing) {
      // Baseline: every cell pays its own full Algorithm 1 pass.
      SimilarityOracle cell_oracle = oracle.WithThreshold(r);
      for (size_t i = 0; i < per_group; ++i) {
        const uint32_t k = grid.ks[i];
        SweepCellResult* out = &cells[i];
        out->k = k;
        out->r = r;
        if (options.mode == SweepMode::kEnumerate) {
          EnumOptions cell = options.enumerate;
          cell.k = k;
          out->enum_result = EnumerateMaximalCores(g, cell_oracle, cell);
        } else {
          MaxOptions cell = options.maximum;
          cell.k = k;
          out->max_result = FindMaximumCore(g, cell_oracle, cell);
        }
      }
      return;
    }
    Timer prepare_timer;
    SimilarityOracle base_oracle = oracle.WithThreshold(r);
    base_status[ri] = PrepareWorkspace(g, base_oracle,
                                       BasePipelineOptions(options, k_min),
                                       &bases[ri]);
    base_seconds[ri] = prepare_timer.ElapsedSeconds();
    if (!base_status[ri].ok()) {
      for (size_t i = 0; i < per_group; ++i) {
        FailCell(grid.ks[i], r, base_status[ri], options, &cells[i]);
      }
      return;
    }
    SweepGroup(bases[ri], grid.ks, r, options, cells, pool);
  };

  if (threads <= 1) {
    for (size_t ri = 0; ri < grid.rs.size(); ++ri) RunGroup(ri, nullptr);
  } else {
    // Groups — and, transitively, the cells each group fans out — all run
    // on one shared pool, so a skewed grid (one expensive r, several cheap
    // ones) still keeps every worker busy.
    TaskPool pool(threads);
    for (size_t ri = 0; ri < grid.rs.size(); ++ri) {
      pool.Submit([&RunGroup, ri, &pool] { RunGroup(ri, &pool); });
    }
    pool.Wait();
  }

  for (size_t ri = 0; ri < grid.rs.size(); ++ri) {
    result.prepare_seconds += base_seconds[ri];
  }
  for (const auto& cell : result.cells) {
    const MiningStats& stats = cell.stats(options.mode);
    if (cell.derived) ++result.derived_cells;
    result.pair_sweeps += stats.prepare_pair_sweeps;
    result.prepare_seconds += stats.prepare_seconds;
    if (result.status.ok() && !cell.status(options.mode).ok()) {
      result.status = cell.status(options.mode);
    }
  }
  if (options.reuse_preprocessing) result.pair_sweeps += grid.rs.size();
  result.seconds = timer.ElapsedSeconds();
  return result;
}

SweepResult SweepPreparedWorkspace(const PreparedWorkspace& base,
                                   const std::vector<uint32_t>& ks,
                                   const SweepOptions& options) {
  SweepResult result;
  Timer timer;
  if (ks.empty()) {
    result.status = Status::InvalidArgument("sweep needs at least one k");
    return result;
  }
  for (uint32_t k : ks) {
    if (k < base.k) {
      result.status = Status::InvalidArgument(
          "k=" + std::to_string(k) + " is below the workspace's k=" +
          std::to_string(base.k) + "; a prepared substrate only serves "
          "k' >= k (k-core nesting)");
      return result;
    }
  }
  result.cells.resize(ks.size());

  const uint32_t threads = options.parallel.Resolve();
  if (threads <= 1) {
    SweepGroup(base, ks, base.threshold, options, result.cells.data(),
               nullptr);
  } else {
    TaskPool pool(threads);
    SweepGroup(base, ks, base.threshold, options, result.cells.data(), &pool);
    pool.Wait();
  }

  for (const auto& cell : result.cells) {
    const MiningStats& stats = cell.stats(options.mode);
    if (cell.derived) ++result.derived_cells;
    result.prepare_seconds += stats.prepare_seconds;
    if (result.status.ok() && !cell.status(options.mode).ok()) {
      result.status = cell.status(options.mode);
    }
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace krcore
