#include "core/parameter_sweep.h"

#include <algorithm>
#include <memory>
#include <string>

#include "core/parallel.h"
#include "util/timer.h"

namespace krcore {
namespace {

/// Builds the PipelineOptions the sweep's shared preparation runs with,
/// mirroring what the cold mining entry points construct internally.
PipelineOptions BasePipelineOptions(const SweepOptions& options, uint32_t k) {
  const bool enumerate = options.mode == SweepMode::kEnumerate;
  PipelineOptions pipe;
  pipe.k = k;
  pipe.preprocess = enumerate ? options.enumerate.preprocess
                              : options.maximum.preprocess;
  pipe.join_strategy = enumerate ? options.enumerate.join_strategy
                                 : options.maximum.join_strategy;
  pipe.deadline =
      enumerate ? options.enumerate.deadline : options.maximum.deadline;
  return pipe;
}

/// Mines one cell on components already extracted at (k, r). `derive`
/// describes the cell-specific substrate work (zero for the base cell,
/// whose shared pair sweep is accounted at the sweep level instead).
struct DeriveInfo {
  bool derived = false;
  bool r_restricted = false;
  uint64_t score_filtered_pairs = 0;
  double seconds = 0.0;
};

void MineCell(const std::vector<ComponentContext>& components, uint32_t k,
              double r, const DeriveInfo& derive, const SweepOptions& options,
              SweepCellResult* out) {
  out->k = k;
  out->r = r;
  out->derived = derive.derived;
  out->r_restricted = derive.r_restricted;
  if (options.mode == SweepMode::kEnumerate) {
    EnumOptions cell = options.enumerate;
    cell.k = k;
    out->enum_result = EnumerateMaximalCores(components, cell);
  } else {
    MaxOptions cell = options.maximum;
    cell.k = k;
    out->max_result = FindMaximumCore(components, cell);
  }
  MiningStats& stats = options.mode == SweepMode::kEnumerate
                           ? out->enum_result.stats
                           : out->max_result.stats;
  stats.prepare_derivations = derive.derived ? 1 : 0;
  stats.derive_r_restrictions = derive.r_restricted ? 1 : 0;
  stats.score_filtered_pairs = derive.score_filtered_pairs;
  stats.prepare_seconds = derive.seconds;
  stats.seconds += derive.seconds;
}

/// Marks a whole cell failed (substrate never materialized).
void FailCell(uint32_t k, double r, const Status& status,
              const SweepOptions& options, SweepCellResult* out) {
  out->k = k;
  out->r = r;
  if (options.mode == SweepMode::kEnumerate) {
    out->enum_result.status = status;
  } else {
    out->max_result.status = status;
  }
}

/// Runs one cell whose substrate comes from `base`: the cell matching the
/// base identity mines the cached components in place; any other derives
/// its own (task-local) workspace first — a k-core re-peel, plus a score
/// filter when the cell's r is stricter than the base threshold.
void RunReusedCell(const PreparedWorkspace& base, uint32_t k, double r,
                   const SweepOptions& options, SweepCellResult* out) {
  if (k == base.k && r == base.threshold) {
    MineCell(base.components, k, r, DeriveInfo{}, options, out);
    return;
  }
  Timer timer;
  PreparedWorkspace derived;
  PreprocessReport report;
  Status s = DeriveWorkspace(base, k, r, BasePipelineOptions(options, k),
                             &derived, &report);
  if (!s.ok()) {
    FailCell(k, r, s, options, out);
    return;
  }
  DeriveInfo info;
  info.derived = true;
  info.r_restricted = r != base.threshold;
  info.score_filtered_pairs = report.score_filtered_pairs;
  info.seconds = timer.ElapsedSeconds();
  MineCell(derived.components, k, r, info, options, out);
}

/// Prepared-base grid sweep shared by the public entry points: mines one
/// cell per (r outer, k inner) grid point into cells_out. With `pool`
/// non-null the cells run as tasks (base is read-only and outlives the
/// pool's Wait()).
void SweepCells(const PreparedWorkspace& base,
                const std::vector<uint32_t>& ks,
                const std::vector<double>& rs, const SweepOptions& options,
                SweepCellResult* cells_out, TaskPool* pool) {
  size_t idx = 0;
  for (double r : rs) {
    for (uint32_t k : ks) {
      SweepCellResult* out = &cells_out[idx++];
      if (pool != nullptr) {
        const PreparedWorkspace* base_ptr = &base;
        const SweepOptions* opts = &options;
        pool->Submit([base_ptr, k, r, opts, out] {
          RunReusedCell(*base_ptr, k, r, *opts, out);
        });
      } else {
        RunReusedCell(base, k, r, options, out);
      }
    }
  }
}

/// Folds per-cell stats into the sweep-level accounting.
void FinishResult(const SweepOptions& options, Timer* timer,
                  SweepResult* result) {
  for (const auto& cell : result->cells) {
    const MiningStats& stats = cell.stats(options.mode);
    if (cell.derived) ++result->derived_cells;
    result->pair_sweeps += stats.prepare_pair_sweeps;
    result->prepare_seconds += stats.prepare_seconds;
    if (result->status.ok() && !cell.status(options.mode).ok()) {
      result->status = cell.status(options.mode);
    }
  }
  result->seconds = timer->ElapsedSeconds();
}

}  // namespace

SweepResult RunParameterSweep(const Graph& g, const SimilarityOracle& oracle,
                              const SweepGrid& grid,
                              const SweepOptions& options) {
  SweepResult result;
  Timer timer;
  if (grid.ks.empty() || grid.rs.empty()) {
    result.status =
        Status::InvalidArgument("sweep grid needs at least one k and one r");
    return result;
  }
  const uint32_t k_min = *std::min_element(grid.ks.begin(), grid.ks.end());
  if (k_min == 0) {
    // Rejected for the whole grid in both reuse modes: with reuse the base
    // would be prepared at k_min and fail, poisoning every cell, while cold
    // mode would fail only the k=0 cells — an inconsistency the boundary
    // tests lock out.
    result.status = Status::InvalidArgument(
        "sweep grid contains k = 0; k must be a positive integer");
    return result;
  }
  result.cells.resize(grid.num_cells());
  const uint32_t threads = options.parallel.Resolve();

  if (!options.reuse_preprocessing) {
    // Baseline: every cell pays its own full Algorithm 1 pass. Kept
    // sequential per r group on the shared pool, exactly as before.
    auto RunColdGroup = [&](size_t ri) {
      SweepCellResult* cells = &result.cells[ri * grid.ks.size()];
      const double r = grid.rs[ri];
      SimilarityOracle cell_oracle = oracle.WithThreshold(r);
      for (size_t i = 0; i < grid.ks.size(); ++i) {
        const uint32_t k = grid.ks[i];
        SweepCellResult* out = &cells[i];
        out->k = k;
        out->r = r;
        if (options.mode == SweepMode::kEnumerate) {
          EnumOptions cell = options.enumerate;
          cell.k = k;
          out->enum_result = EnumerateMaximalCores(g, cell_oracle, cell);
        } else {
          MaxOptions cell = options.maximum;
          cell.k = k;
          out->max_result = FindMaximumCore(g, cell_oracle, cell);
        }
      }
    };
    if (threads <= 1) {
      for (size_t ri = 0; ri < grid.rs.size(); ++ri) RunColdGroup(ri);
    } else {
      TaskPool pool(threads);
      for (size_t ri = 0; ri < grid.rs.size(); ++ri) {
        pool.Submit([&RunColdGroup, ri] { RunColdGroup(ri); });
      }
      pool.Wait();
    }
    FinishResult(options, &timer, &result);
    return result;
  }

  // One pair sweep for the whole grid: prepare at the loosest threshold
  // (largest filtered graph — every stricter cell's k-core nests inside it)
  // with the score annotation covering the strictest, at the smallest k.
  // Every cell, including other base-r cells, is then a pure derivation.
  const bool is_distance = oracle.is_distance();
  const double r_serve = LoosestThreshold(grid.rs, is_distance);
  const double r_cover = StrictestThreshold(grid.rs, is_distance);
  Timer prepare_timer;
  SimilarityOracle base_oracle = oracle.WithThreshold(r_serve);
  PipelineOptions pipe = BasePipelineOptions(options, k_min);
  // A single-r grid never r-restricts, so skip the annotation entirely:
  // the base keeps the lean boolean substrate and k-only cells derive from
  // it exactly as before the score substrate existed.
  if (r_serve != r_cover) pipe.score_cover = r_cover;
  PreparedWorkspace base;
  Status base_status = PrepareWorkspace(g, base_oracle, pipe, &base);
  result.prepare_seconds = prepare_timer.ElapsedSeconds();
  if (!base_status.ok()) {
    size_t idx = 0;
    for (double r : grid.rs) {
      for (uint32_t k : grid.ks) {
        FailCell(k, r, base_status, options, &result.cells[idx++]);
      }
    }
    result.status = base_status;
    result.seconds = timer.ElapsedSeconds();
    return result;
  }
  result.pair_sweeps = 1;

  if (threads <= 1) {
    SweepCells(base, grid.ks, grid.rs, options, result.cells.data(), nullptr);
  } else {
    TaskPool pool(threads);
    SweepCells(base, grid.ks, grid.rs, options, result.cells.data(), &pool);
    pool.Wait();
  }
  FinishResult(options, &timer, &result);
  return result;
}

SweepResult SweepPreparedWorkspace(const PreparedWorkspace& base,
                                   const std::vector<uint32_t>& ks,
                                   const std::vector<double>& rs,
                                   const SweepOptions& options) {
  SweepResult result;
  Timer timer;
  if (ks.empty() || rs.empty()) {
    result.status =
        Status::InvalidArgument("sweep needs at least one k and one r");
    return result;
  }
  for (uint32_t k : ks) {
    if (k < base.k) {
      result.status = Status::InvalidArgument(
          "k=" + std::to_string(k) + " is below the workspace's k=" +
          std::to_string(base.k) + "; a prepared substrate only serves "
          "k' >= k (k-core nesting)");
      return result;
    }
  }
  for (double r : rs) {
    if (!base.Serves(base.k, r)) {
      result.status = Status::InvalidArgument(
          "r=" + std::to_string(r) + " is outside the workspace's serving "
          "interval [" + std::to_string(base.threshold) + ", " +
          std::to_string(base.score_cover) +
          "] (unscored workspaces serve their exact threshold only)");
      return result;
    }
  }
  result.cells.resize(ks.size() * rs.size());

  const uint32_t threads = options.parallel.Resolve();
  if (threads <= 1) {
    SweepCells(base, ks, rs, options, result.cells.data(), nullptr);
  } else {
    TaskPool pool(threads);
    SweepCells(base, ks, rs, options, result.cells.data(), &pool);
    pool.Wait();
  }
  FinishResult(options, &timer, &result);
  return result;
}

SweepResult SweepPreparedWorkspace(const PreparedWorkspace& base,
                                   const std::vector<uint32_t>& ks,
                                   const SweepOptions& options) {
  return SweepPreparedWorkspace(base, ks, {base.threshold}, options);
}

}  // namespace krcore
