#ifndef KRCORE_CORE_SEARCH_ORDER_H_
#define KRCORE_CORE_SEARCH_ORDER_H_

#include <cstdint>

#include "core/krcore_types.h"
#include "core/search_context.h"
#include "util/random.h"

namespace krcore {

/// A branching decision: which candidate vertex to split on, and which
/// branch (expand or shrink) to explore first.
struct BranchChoice {
  VertexId vertex = kInvalidVertex;
  bool expand_first = true;
};

/// Implements the vertex and branch visiting orders of Sec 7. For the
/// measurement-based orders, the Δ1 (relative drop in dissimilar pairs) and
/// Δ2 (relative drop in edges) of each branch are *estimated within two hops
/// of the candidate* (Sec 7.2): the directly pruned vertices plus the
/// structure-peel victims among their neighbors, without simulating the full
/// cascade.
class SearchOrderPolicy {
 public:
  SearchOrderPolicy(VertexOrder order, BranchOrder branch_order, double lambda,
                    uint64_t seed)
      : order_(order),
        branch_order_(branch_order),
        lambda_(lambda),
        rng_(seed) {}

  /// Picks the next branching vertex among C \ SF(C) (or among all of C when
  /// `restrict_to_non_sf` is false, as in BasicEnum which does not apply the
  /// retention rule). Requires at least one eligible candidate.
  ///
  /// `sum_branches` selects the enumeration flavor (score = expand score +
  /// shrink score, branch order irrelevant, Sec 7.3) versus the maximum
  /// flavor (score = best branch, explore that branch first, Sec 7.2).
  BranchChoice Choose(const SearchContext& ctx, bool restrict_to_non_sf,
                      bool sum_branches);

 private:
  struct DeltaEstimate {
    double d1_expand = 0.0, d2_expand = 0.0;
    double d1_shrink = 0.0, d2_shrink = 0.0;
  };
  DeltaEstimate EstimateDeltas(const SearchContext& ctx, VertexId u);

  VertexOrder order_;
  BranchOrder branch_order_;
  double lambda_;
  Rng rng_;
  std::vector<VertexId> scratch_removed_;
  std::vector<VertexId> scratch_eligible_;
};

}  // namespace krcore

#endif  // KRCORE_CORE_SEARCH_ORDER_H_
