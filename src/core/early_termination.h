#ifndef KRCORE_CORE_EARLY_TERMINATION_H_
#define KRCORE_CORE_EARLY_TERMINATION_H_

#include <vector>

#include "core/search_context.h"

namespace krcore {

/// Theorem 5: decides whether the current search node can be abandoned
/// because every (k,r)-core derivable from (M, C) extends to a strictly
/// larger one using excluded vertices, hence none is maximal.
///
/// Condition (i): some u ∈ SF_C(E) (excluded, similar to all of C — and to
/// all of M by the E invariant) has deg(u, M) >= k; attaching u to any
/// derived core R keeps both constraints and connectivity (k >= 1 edges into
/// M ⊆ R).
///
/// Condition (ii): some U ⊆ SF_{C∪E}(E) has deg(u, M ∪ U) >= k for every
/// u ∈ U; computed with an anchored peel (pin M, peel the similarity-free
/// excluded vertices below degree k). To preserve correctness under the
/// connectivity requirement (which the paper leaves implicit), survivors in
/// components of M ∪ U not containing an M vertex are ignored.
///
/// Instantiate once per component: the checker owns reusable scratch
/// buffers, so each call is allocation-free.
class EarlyTerminationChecker {
 public:
  explicit EarlyTerminationChecker(const ComponentContext& comp);

  /// True iff the node rooted at ctx's current (M, C, E) can be abandoned.
  bool CanTerminate(const SearchContext& ctx);

 private:
  const ComponentContext& comp_;
  std::vector<uint8_t> role_;       // 0 = out, 1 = candidate, 2 = anchored M
  std::vector<uint32_t> deg_;
  std::vector<VertexId> candidates_;
  std::vector<VertexId> worklist_;
  std::vector<VertexId> stack_;
  std::vector<uint32_t> seen_;
  uint32_t epoch_ = 0;
};

/// Convenience wrapper for one-off checks (tests).
bool CanTerminateEarly(const SearchContext& ctx);

}  // namespace krcore

#endif  // KRCORE_CORE_EARLY_TERMINATION_H_
