#ifndef KRCORE_CORE_PARAMETER_SWEEP_H_
#define KRCORE_CORE_PARAMETER_SWEEP_H_

#include <cstdint>
#include <vector>

#include "core/enumerate.h"
#include "core/maximum.h"
#include "core/pipeline.h"
#include "graph/graph.h"
#include "similarity/similarity_oracle.h"
#include "util/status.h"

namespace krcore {

/// Batched (k,r) mining over one graph — the paper's experimental loops
/// (Figs 8-14 sweep k at fixed r and r at fixed k) and any serving scenario
/// that answers many parameter combinations over the same snapshot of the
/// network. A cold run per cell repeats the O(n^2) similarity sweep that
/// dominates preprocessing; the sweep engine instead runs **one pair sweep
/// total**: it prepares a single score-annotated workspace at the grid's
/// loosest threshold (its pair sweep stores every score the strictest grid
/// threshold needs) and the smallest requested k, then serves every cell by
/// DeriveWorkspace — a purely structural k-core peel plus score filter of
/// the cached components that never consults the oracle again.

/// The cross product ks x rs of cells to mine. Duplicates are honored (each
/// occurrence is a cell — batch callers should dedupe their specs; the CLI
/// does); neither axis need be sorted. The engine prepares once at
/// (min k, loosest r, cover = strictest r) and derives every cell.
struct SweepGrid {
  std::vector<uint32_t> ks;
  std::vector<double> rs;

  size_t num_cells() const { return ks.size() * rs.size(); }
};

enum class SweepMode {
  kEnumerate,  // maximal (k,r)-core enumeration per cell
  kMaximum,    // maximum (k,r)-core search per cell
};

struct SweepOptions {
  SweepMode mode = SweepMode::kEnumerate;
  /// Per-cell search configuration. The cell's k and the engine-level
  /// deadline/threads are taken from here too; `k` is overwritten per cell
  /// and `preprocess` configures the shared pair sweeps.
  EnumOptions enumerate;
  MaxOptions maximum;
  /// false = run every cell cold from the raw graph (the baseline the
  /// bench compares against; also the reference the tests diff).
  bool reuse_preprocessing = true;
  /// Cell-level concurrency: with T > 1 the independent (k,r) cells (and
  /// the per-r base preparations) run as tasks on one work-stealing
  /// TaskPool. Per-cell searches then run sequentially inside their task —
  /// set this *or* the per-cell parallel options, not both, to avoid
  /// oversubscription.
  ParallelOptions parallel;
};

/// One mined cell. Exactly one of enum_result / max_result is meaningful,
/// per SweepOptions::mode; stats()/status() abstract over the two.
struct SweepCellResult {
  uint32_t k = 0;
  double r = 0.0;
  /// True when the cell's substrate was derived from the cached base
  /// workspace instead of swept fresh.
  bool derived = false;
  /// True when the derivation additionally restricted the threshold (the
  /// cell's r is stricter than the base workspace's serving threshold).
  bool r_restricted = false;
  MaximalCoresResult enum_result;
  MaximumCoreResult max_result;

  const MiningStats& stats(SweepMode mode) const {
    return mode == SweepMode::kEnumerate ? enum_result.stats
                                         : max_result.stats;
  }
  const Status& status(SweepMode mode) const {
    return mode == SweepMode::kEnumerate ? enum_result.status
                                         : max_result.status;
  }
};

struct SweepResult {
  /// Grid order: for each r (outer), for each k (inner).
  std::vector<SweepCellResult> cells;
  /// Full O(n^2) pair sweeps actually run (== 1 with reuse, == cells
  /// without) and cells served by derivation from the cached base.
  uint64_t pair_sweeps = 0;
  uint64_t derived_cells = 0;
  /// Wall time spent preparing/deriving substrates, and end-to-end.
  double prepare_seconds = 0.0;
  double seconds = 0.0;
  /// First non-OK cell status in grid order (OK when all cells succeeded).
  Status status;
};

/// Mines every cell of `grid` over (g, oracle-at-r). The oracle's own
/// threshold is ignored; each r of the grid rebinds it via WithThreshold.
/// Cell results are identical to cold per-cell runs (enumeration output is
/// canonical; the maximum size is deterministic).
SweepResult RunParameterSweep(const Graph& g, const SimilarityOracle& oracle,
                              const SweepGrid& grid,
                              const SweepOptions& options);

/// Sweeps a (ks x rs) grid over an already-prepared (e.g. snapshot-loaded)
/// workspace with zero pair sweeps. Every cell must be servable: k >= the
/// workspace's k and r inside its serve..cover score interval — which for
/// an unscored (or pre-v3 snapshot) workspace is just its baked-in
/// threshold.
SweepResult SweepPreparedWorkspace(const PreparedWorkspace& base,
                                   const std::vector<uint32_t>& ks,
                                   const std::vector<double>& rs,
                                   const SweepOptions& options);

/// k-only form: the workspace's baked-in threshold is the only r.
SweepResult SweepPreparedWorkspace(const PreparedWorkspace& base,
                                   const std::vector<uint32_t>& ks,
                                   const SweepOptions& options);

}  // namespace krcore

#endif  // KRCORE_CORE_PARAMETER_SWEEP_H_
