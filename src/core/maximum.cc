#include "core/maximum.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "core/early_termination.h"
#include "core/parallel.h"
#include "core/pipeline.h"
#include "core/search_context.h"
#include "core/search_order.h"
#include "core/size_bounds.h"
#include "graph/connectivity.h"
#include "util/logging.h"

namespace krcore {
namespace {

/// The incumbent best core, shared by every component searcher. The size is
/// readable lock-free (it is the bound-pruning hot path, polled at every
/// search node); the vertex set itself is guarded by a mutex and only
/// touched on the rare strictly-better / tie-breaking emissions.
class SharedBest {
 public:
  uint64_t Size() const { return size_.load(std::memory_order_relaxed); }

  /// Installs `candidate` (sorted parent ids) when strictly larger than the
  /// incumbent, or equal-sized and lexicographically smaller — the latter
  /// makes the reported set stable across work-stealing schedules whenever
  /// the competing maxima are all discovered.
  void Offer(VertexSet candidate) {
    std::lock_guard<std::mutex> lock(mu_);
    if (candidate.size() > best_.size() ||
        (candidate.size() == best_.size() && !best_.empty() &&
         candidate < best_)) {
      best_ = std::move(candidate);
      size_.store(best_.size(), std::memory_order_relaxed);
    }
  }

  VertexSet Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(best_);
  }

 private:
  std::mutex mu_;
  VertexSet best_;
  std::atomic<uint64_t> size_{0};
};

/// Per-component branch-and-bound for the maximum (k,r)-core (Algorithm 5).
class ComponentMaximizer {
 public:
  ComponentMaximizer(const ComponentContext& comp, const MaxOptions& options,
                     MiningStats* stats, SharedBest* best)
      : comp_(comp),
        options_(options),
        stats_(stats),
        best_(best),
        ctx_(comp, options.k,
             /*track_excluded=*/options.use_early_termination),
        policy_(options.order, options.branch_order, options.lambda,
                options.seed),
        et_checker_(comp),
        bound_computer_(comp) {}

  Status Run() {
    if (options_.use_retention) {
      if (!ctx_.PromoteSimilarityFree(&stats_->promotions)) return Status::OK();
    }
    return Visit();
  }

 private:
  Status Visit() {
    if ((stats_->search_nodes++ & 0x3F) == 0 && options_.deadline.Expired()) {
      return Status::DeadlineExceeded("maximum search budget expired");
    }
    KRCORE_DCHECK(!ctx_.dead());

    // Early termination (Theorem 5): any core from this subtree extends to a
    // strictly larger one elsewhere; it cannot be the (unique-size) maximum.
    if (options_.use_early_termination && et_checker_.CanTerminate(ctx_)) {
      ++stats_->early_terminations;
      return Status::OK();
    }

    // Upper-bound cutoff (Algorithm 5 line 2): prune unless the bound says
    // this subtree could beat the incumbent — which other threads may have
    // grown since the last node.
    uint64_t bound = bound_computer_.Compute(ctx_, options_.bound);
    if (bound <= best_->Size()) {
      ++stats_->bound_prunes;
      return Status::OK();
    }

    // Emission (Theorem 4).
    bool emit = options_.use_retention ? ctx_.CandidatesAllSimilarityFree()
                                       : ctx_.c_list().empty();
    if (emit) {
      Emit();
      return Status::OK();
    }

    BranchChoice choice =
        policy_.Choose(ctx_, /*restrict_to_non_sf=*/options_.use_retention,
                       /*sum_branches=*/false);
    VertexId u = choice.vertex;

    for (int round = 0; round < 2; ++round) {
      bool expanding = (round == 0) == choice.expand_first;
      size_t mark = ctx_.Mark();
      bool alive;
      if (expanding) {
        ++stats_->expand_branches;
        alive = ctx_.Expand(u);
      } else {
        ++stats_->shrink_branches;
        alive = ctx_.Shrink(u);
      }
      if (alive && options_.use_retention) {
        alive = ctx_.PromoteSimilarityFree(&stats_->promotions);
      }
      Status s = alive ? Visit() : Status::OK();
      ctx_.RewindTo(mark);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  void Emit() {
    std::vector<VertexId> mc = ctx_.MaterializeMC();
    if (mc.empty()) return;
    auto components = ComponentsOfSubset(comp_.graph, mc);
    for (const auto& local_core : components) {
      ++stats_->emitted_candidates;
      if (local_core.size() < best_->Size()) continue;
      VertexSet parent_ids;
      parent_ids.reserve(local_core.size());
      for (VertexId v : local_core) parent_ids.push_back(comp_.to_parent[v]);
      std::sort(parent_ids.begin(), parent_ids.end());
      best_->Offer(std::move(parent_ids));
    }
  }

  const ComponentContext& comp_;
  const MaxOptions& options_;
  MiningStats* stats_;
  SharedBest* best_;
  SearchContext ctx_;
  SearchOrderPolicy policy_;
  EarlyTerminationChecker et_checker_;
  SizeBoundComputer bound_computer_;
};

}  // namespace

MaximumCoreResult FindMaximumCore(const Graph& g,
                                  const SimilarityOracle& oracle,
                                  const MaxOptions& options) {
  MaximumCoreResult result;
  Timer timer;

  const uint32_t threads = options.parallel.Resolve();
  PipelineOptions pipe;
  pipe.k = options.k;
  pipe.preprocess = options.preprocess;
  pipe.preprocess.num_threads = threads;
  pipe.deadline = options.deadline;
  pipe.order_by_max_degree = true;  // seed the incumbent from the densest part
  std::vector<ComponentContext> components;
  result.status = PrepareComponents(g, oracle, pipe, &components);
  if (!result.status.ok()) return result;

  SharedBest best;
  if (threads <= 1 || components.size() <= 1) {
    for (const auto& comp : components) {
      ++result.stats.components;
      // A whole component can be skipped when even its total size cannot
      // beat the incumbent.
      if (comp.size() <= best.Size()) continue;
      ComponentMaximizer maximizer(comp, options, &result.stats, &best);
      result.status = maximizer.Run();
      if (!result.status.ok()) break;
    }
  } else {
    // Work-stealing per-component driver. The atomic incumbent size means a
    // big core found early in one component prunes every other component's
    // search immediately, just like the sequential ordering intends.
    std::vector<MiningStats> stats(components.size());
    std::vector<Status> statuses(components.size());
    std::atomic<bool> failed{false};
    ParallelFor(threads, components.size(), [&](size_t i) {
      if (failed.load(std::memory_order_relaxed)) return;  // drain quickly
      if (components[i].size() <= best.Size()) return;
      ComponentMaximizer maximizer(components[i], options, &stats[i], &best);
      statuses[i] = maximizer.Run();
      if (!statuses[i].ok()) failed.store(true, std::memory_order_relaxed);
    });
    // Merge stats in component order and stop at the first failure, so a
    // timed-out run reports the same shape of counters as the sequential
    // loop (which breaks there). The shared best itself is unaffected.
    for (size_t i = 0; i < components.size(); ++i) {
      ++result.stats.components;
      result.stats.MergeFrom(stats[i]);
      if (!statuses[i].ok()) {
        result.status = statuses[i];
        break;
      }
    }
  }
  result.best = best.Take();
  result.stats.maximal_found = result.best.empty() ? 0 : 1;
  result.stats.seconds = timer.ElapsedSeconds();
  return result;
}

MaxOptions BasicMaxOptions(uint32_t k) {
  MaxOptions o;
  o.k = k;
  o.bound = SizeBoundKind::kNaive;
  return o;
}

MaxOptions AdvMaxOptions(uint32_t k) {
  MaxOptions o;
  o.k = k;
  o.bound = SizeBoundKind::kDoubleKcore;
  return o;
}

}  // namespace krcore
