#include "core/maximum.h"

#include <algorithm>

#include "core/early_termination.h"

#include "core/pipeline.h"
#include "core/search_context.h"
#include "core/search_order.h"
#include "core/size_bounds.h"
#include "graph/connectivity.h"
#include "util/logging.h"

namespace krcore {
namespace {

/// Per-component branch-and-bound for the maximum (k,r)-core (Algorithm 5).
class ComponentMaximizer {
 public:
  ComponentMaximizer(const ComponentContext& comp, const MaxOptions& options,
                     MiningStats* stats, VertexSet* best)
      : comp_(comp),
        options_(options),
        stats_(stats),
        best_(best),
        ctx_(comp, options.k,
             /*track_excluded=*/options.use_early_termination),
        policy_(options.order, options.branch_order, options.lambda,
                options.seed),
        et_checker_(comp),
        bound_computer_(comp) {}

  Status Run() {
    if (options_.use_retention) {
      if (!ctx_.PromoteSimilarityFree(&stats_->promotions)) return Status::OK();
    }
    return Visit();
  }

 private:
  Status Visit() {
    if ((stats_->search_nodes++ & 0x3F) == 0 && options_.deadline.Expired()) {
      return Status::DeadlineExceeded("maximum search budget expired");
    }
    KRCORE_DCHECK(!ctx_.dead());

    // Early termination (Theorem 5): any core from this subtree extends to a
    // strictly larger one elsewhere; it cannot be the (unique-size) maximum.
    if (options_.use_early_termination && et_checker_.CanTerminate(ctx_)) {
      ++stats_->early_terminations;
      return Status::OK();
    }

    // Upper-bound cutoff (Algorithm 5 line 2): prune unless the bound says
    // this subtree could beat the incumbent.
    uint64_t bound = bound_computer_.Compute(ctx_, options_.bound);
    if (bound <= best_->size()) {
      ++stats_->bound_prunes;
      return Status::OK();
    }

    // Emission (Theorem 4).
    bool emit = options_.use_retention ? ctx_.CandidatesAllSimilarityFree()
                                       : ctx_.c_list().empty();
    if (emit) {
      Emit();
      return Status::OK();
    }

    BranchChoice choice =
        policy_.Choose(ctx_, /*restrict_to_non_sf=*/options_.use_retention,
                       /*sum_branches=*/false);
    VertexId u = choice.vertex;

    for (int round = 0; round < 2; ++round) {
      bool expanding = (round == 0) == choice.expand_first;
      size_t mark = ctx_.Mark();
      bool alive;
      if (expanding) {
        ++stats_->expand_branches;
        alive = ctx_.Expand(u);
      } else {
        ++stats_->shrink_branches;
        alive = ctx_.Shrink(u);
      }
      if (alive && options_.use_retention) {
        alive = ctx_.PromoteSimilarityFree(&stats_->promotions);
      }
      Status s = alive ? Visit() : Status::OK();
      ctx_.RewindTo(mark);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  void Emit() {
    std::vector<VertexId> mc = ctx_.MaterializeMC();
    if (mc.empty()) return;
    auto components = ComponentsOfSubset(comp_.graph, mc);
    for (const auto& local_core : components) {
      ++stats_->emitted_candidates;
      if (local_core.size() > best_->size()) {
        best_->clear();
        best_->reserve(local_core.size());
        for (VertexId v : local_core) best_->push_back(comp_.to_parent[v]);
        std::sort(best_->begin(), best_->end());
      }
    }
  }

  const ComponentContext& comp_;
  const MaxOptions& options_;
  MiningStats* stats_;
  VertexSet* best_;
  SearchContext ctx_;
  SearchOrderPolicy policy_;
  EarlyTerminationChecker et_checker_;
  SizeBoundComputer bound_computer_;
};

}  // namespace

MaximumCoreResult FindMaximumCore(const Graph& g,
                                  const SimilarityOracle& oracle,
                                  const MaxOptions& options) {
  MaximumCoreResult result;
  Timer timer;

  PipelineOptions pipe;
  pipe.k = options.k;
  pipe.max_pair_budget = options.max_pair_budget;
  pipe.order_by_max_degree = true;  // seed the incumbent from the densest part
  std::vector<ComponentContext> components;
  result.status = PrepareComponents(g, oracle, pipe, &components);
  if (!result.status.ok()) return result;

  for (const auto& comp : components) {
    ++result.stats.components;
    // A whole component can be skipped when even its total size cannot beat
    // the incumbent.
    if (comp.size() <= result.best.size()) continue;
    ComponentMaximizer maximizer(comp, options, &result.stats, &result.best);
    result.status = maximizer.Run();
    if (!result.status.ok()) break;
  }
  result.stats.maximal_found = result.best.empty() ? 0 : 1;
  result.stats.seconds = timer.ElapsedSeconds();
  return result;
}

MaxOptions BasicMaxOptions(uint32_t k) {
  MaxOptions o;
  o.k = k;
  o.bound = SizeBoundKind::kNaive;
  return o;
}

MaxOptions AdvMaxOptions(uint32_t k) {
  MaxOptions o;
  o.k = k;
  o.bound = SizeBoundKind::kDoubleKcore;
  return o;
}

}  // namespace krcore
