#include "core/maximum.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/early_termination.h"
#include "core/greedy_seed.h"
#include "core/parallel.h"
#include "core/pipeline.h"
#include "core/search_context.h"
#include "core/search_order.h"
#include "core/size_bounds.h"
#include "graph/connectivity.h"
#include "util/logging.h"

namespace krcore {
namespace {

/// The incumbent best core, shared by every search task. The size is
/// readable lock-free (it is the bound-pruning hot path, polled at every
/// search node); the vertex set itself is guarded by a mutex and only
/// touched on the rare strictly-better / tie-breaking emissions.
class SharedBest {
 public:
  uint64_t Size() const { return size_.load(std::memory_order_relaxed); }

  /// Installs `candidate` (sorted parent ids) when strictly larger than the
  /// incumbent, or equal-sized and lexicographically smaller — the latter
  /// makes the reported set stable across work-stealing schedules whenever
  /// the competing maxima are all discovered.
  void Offer(VertexSet candidate) {
    std::lock_guard<std::mutex> lock(mu_);
    if (candidate.size() > best_.size() ||
        (candidate.size() == best_.size() && !best_.empty() &&
         candidate < best_)) {
      best_ = std::move(candidate);
      size_.store(best_.size(), std::memory_order_relaxed);
    }
  }

  VertexSet Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(best_);
  }

 private:
  // The incumbent size is polled at every search node by every worker, so
  // it must own its cache line: sharing one with the mutex (or the vector's
  // header, which Offer rewrites) would make each rare emission invalidate
  // the line for all pollers — the false-sharing suspect ROADMAP names for
  // the missing multicore speedup on the bound-pruning hot path.
  alignas(64) std::atomic<uint64_t> size_{0};
  alignas(64) std::mutex mu_;
  VertexSet best_;
};

/// Cached expensive-tier bound, inherited *down* the recursion by value: a
/// value computed at a node stays a valid upper bound for every descendant
/// (M ∪ C only shrinks along a root-to-leaf chain), and because each child
/// receives its own copy, backtracking restores the ancestor's cache for the
/// sibling automatically — a sibling subtree must never see a bound computed
/// inside the other branch.
struct BoundCache {
  uint64_t value = UINT64_MAX;  // nothing computed yet
  uint32_t nodes_since = 0;     // nodes on this chain since the last compute
};

/// Shared per-component search state. Every task of the component — the root
/// and all forked subtrees — holds the same job; tasks merge their local
/// stats and first error under the job mutex when they finish.
struct MaxJob {
  MaxJob(const ComponentContext& c, const MaxOptions& o, SharedBest* b,
         std::atomic<bool>* f)
      : comp(c), options(o), best(b), failed(f) {}

  const ComponentContext& comp;
  const MaxOptions& options;
  SharedBest* best;
  std::atomic<bool>* failed;  // any task of any component errored: drain
  TaskPool* pool = nullptr;   // null = sequential (no subtree forking)

  std::mutex mu;
  MiningStats stats;
  Status status;  // first non-OK of any task

  void Finish(const MiningStats& task_stats, const Status& task_status) {
    if (!task_status.ok()) failed->store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu);
    stats.MergeFrom(task_stats);
    if (status.ok() && !task_status.ok()) status = task_status;
  }
};

/// One task of the per-component branch-and-bound for the maximum (k,r)-core
/// (Algorithm 5): either the component root or a forked subtree. Owns its
/// SearchContext and all per-task scratch (policy Rng, bound computer, early
/// termination checker), so tasks share nothing mutable but SharedBest and
/// the job accumulators.
class ComponentMaximizer {
 public:
  /// Root task: fresh context over the whole component.
  explicit ComponentMaximizer(std::shared_ptr<MaxJob> job)
      : ComponentMaximizer(
            std::move(job),
            // Delegation needs the job pointer before the member init; read
            // it from the argument of the delegated-to constructor instead.
            /*placeholder=*/0) {}

  /// Subtree task: adopts a forked context at `depth` with the ancestor's
  /// bound cache; Run(expand, u) applies the pending branch op first.
  ComponentMaximizer(std::shared_ptr<MaxJob> job, SearchContext&& ctx,
                     uint32_t depth, BoundCache cache)
      : job_(std::move(job)),
        ctx_(std::move(ctx)),
        depth_(depth),
        cache_(cache),
        policy_(job_->options.order, job_->options.branch_order,
                job_->options.lambda, job_->options.seed),
        et_checker_(job_->comp),
        bound_computer_(job_->comp) {}

  /// Runs the root task: retention fixpoint then the full tree.
  void RunRoot() {
    Status s = Status::OK();
    bool alive = true;
    if (options().use_retention) {
      alive = ctx_.PromoteSimilarityFree(&stats_.promotions);
    }
    if (alive) s = Visit(depth_, cache_);
    job_->Finish(stats_, s);
  }

  /// Runs a forked subtree task: applies the branch op the parent deferred,
  /// then explores the subtree.
  void RunBranch(bool expand, VertexId u) {
    Status s = Status::OK();
    bool alive;
    if (expand) {
      ++stats_.expand_branches;
      alive = ctx_.Expand(u);
    } else {
      ++stats_.shrink_branches;
      alive = ctx_.Shrink(u);
    }
    if (alive && options().use_retention) {
      alive = ctx_.PromoteSimilarityFree(&stats_.promotions);
    }
    if (alive) s = Visit(depth_, cache_);
    job_->Finish(stats_, s);
  }

 private:
  ComponentMaximizer(std::shared_ptr<MaxJob> job, int /*placeholder*/)
      : job_(std::move(job)),
        ctx_(job_->comp, job_->options.k,
             /*track_excluded=*/job_->options.use_early_termination),
        policy_(job_->options.order, job_->options.branch_order,
                job_->options.lambda, job_->options.seed),
        et_checker_(job_->comp),
        bound_computer_(job_->comp) {}

  const MaxOptions& options() const { return job_->options; }

  /// One search node. `cache` travels by value so each branch inherits the
  /// tightest ancestor bound and backtracking needs no undo.
  Status Visit(uint32_t depth, BoundCache cache) {
    if ((stats_.search_nodes++ & 0x3F) == 0 && options().deadline.Expired()) {
      return Status::DeadlineExceeded("maximum search budget expired");
    }
    // Another task failed (deadline): drain quickly, its status wins.
    if (job_->failed->load(std::memory_order_relaxed)) return Status::OK();
    KRCORE_DCHECK(!ctx_.dead());

    // Early termination (Theorem 5): any core from this subtree extends to a
    // strictly larger one elsewhere; it cannot be the (unique-size) maximum.
    if (options().use_early_termination && et_checker_.CanTerminate(ctx_)) {
      ++stats_.early_terminations;
      return Status::OK();
    }

    // Upper-bound cutoff (Algorithm 5 line 2), tiered: the free |M|+|C|
    // check runs first, then the cached expensive value, and only when
    // neither settles the node is the expensive tier recomputed — and only
    // if M ∪ C shrank below the cached bound or the refresh interval hit.
    const uint64_t incumbent = job_->best->Size();
    const uint64_t naive = bound_computer_.Naive(ctx_);
    if (naive <= incumbent) {
      ++stats_.bound_naive_prunes;
      ++stats_.bound_prunes;
      return Status::OK();
    }
    if (options().bound != SizeBoundKind::kNaive) {
      if (cache.value <= incumbent) {
        ++stats_.bound_cache_hits;
        ++stats_.bound_prunes;
        return Status::OK();
      }
      ++cache.nodes_since;
      if (naive < cache.value || cache.nodes_since >= options().bound_refresh) {
        cache.value = bound_computer_.Compute(ctx_, options().bound);
        cache.nodes_since = 0;
        ++stats_.bound_recomputes;
        if (cache.value <= incumbent) {
          ++stats_.bound_expensive_prunes;
          ++stats_.bound_prunes;
          return Status::OK();
        }
      }
    }

    // Emission (Theorem 4).
    bool emit = options().use_retention ? ctx_.CandidatesAllSimilarityFree()
                                        : ctx_.c_list().empty();
    if (emit) {
      Emit();
      return Status::OK();
    }

    BranchChoice choice =
        policy_.Choose(ctx_, /*restrict_to_non_sf=*/options().use_retention,
                       /*sum_branches=*/false);
    VertexId u = choice.vertex;

    if (job_->pool != nullptr && depth < options().parallel.split_depth &&
        job_->pool->BacklogLow()) {
      // Fork the second-visited branch onto the shared pool and continue the
      // first-visited branch inline — the incumbent stays live across tasks
      // through SharedBest, so cross-task pruning matches the sequential
      // schedule's intent. Skipped when the pool already has a backlog:
      // queued forks are dead weight (each holds a full state copy).
      Spawn(/*expand=*/!choice.expand_first, u, depth + 1, cache);
      size_t mark = ctx_.Mark();
      bool alive;
      if (choice.expand_first) {
        ++stats_.expand_branches;
        alive = ctx_.Expand(u);
      } else {
        ++stats_.shrink_branches;
        alive = ctx_.Shrink(u);
      }
      if (alive && options().use_retention) {
        alive = ctx_.PromoteSimilarityFree(&stats_.promotions);
      }
      Status s = alive ? Visit(depth + 1, cache) : Status::OK();
      ctx_.RewindTo(mark);
      return s;
    }

    for (int round = 0; round < 2; ++round) {
      bool expanding = (round == 0) == choice.expand_first;
      size_t mark = ctx_.Mark();
      bool alive;
      if (expanding) {
        ++stats_.expand_branches;
        alive = ctx_.Expand(u);
      } else {
        ++stats_.shrink_branches;
        alive = ctx_.Shrink(u);
      }
      if (alive && options().use_retention) {
        alive = ctx_.PromoteSimilarityFree(&stats_.promotions);
      }
      Status s = alive ? Visit(depth + 1, cache) : Status::OK();
      ctx_.RewindTo(mark);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  void Spawn(bool expand, VertexId u, uint32_t depth, BoundCache cache) {
    // std::function requires copyable captures; box the forked context.
    auto forked = std::make_shared<SearchContext>(ctx_.Fork());
    auto job = job_;
    job_->pool->Submit([job, forked, expand, u, depth, cache]() mutable {
      if (job->failed->load(std::memory_order_relaxed)) {
        job->Finish(MiningStats(), Status::OK());
        return;
      }
      ComponentMaximizer task(job, std::move(*forked), depth, cache);
      task.RunBranch(expand, u);
    });
  }

  void Emit() {
    std::vector<VertexId> mc = ctx_.MaterializeMC();
    if (mc.empty()) return;
    auto components = ComponentsOfSubset(job_->comp.graph, mc);
    for (const auto& local_core : components) {
      ++stats_.emitted_candidates;
      if (local_core.size() < job_->best->Size()) continue;
      VertexSet parent_ids;
      parent_ids.reserve(local_core.size());
      for (VertexId v : local_core) {
        parent_ids.push_back(job_->comp.to_parent[v]);
      }
      std::sort(parent_ids.begin(), parent_ids.end());
      job_->best->Offer(std::move(parent_ids));
    }
  }

  std::shared_ptr<MaxJob> job_;
  SearchContext ctx_;
  uint32_t depth_ = 0;
  BoundCache cache_;
  MiningStats stats_;
  SearchOrderPolicy policy_;
  EarlyTerminationChecker et_checker_;
  SizeBoundComputer bound_computer_;
};

}  // namespace

MaximumCoreResult FindMaximumCore(const Graph& g,
                                  const SimilarityOracle& oracle,
                                  const MaxOptions& options) {
  Timer timer;
  const uint32_t threads = options.parallel.Resolve();
  PipelineOptions pipe;
  pipe.k = options.k;
  pipe.preprocess = options.preprocess;
  pipe.preprocess.num_threads = threads;
  pipe.join_strategy = options.join_strategy;
  pipe.deadline = options.deadline;
  pipe.order_by_max_degree = true;  // search the densest part first
  std::vector<ComponentContext> components;
  PreprocessReport prep_report;
  Status prepared = PrepareComponents(g, oracle, pipe, &components,
                                      &prep_report);
  const double prepare_seconds = timer.ElapsedSeconds();
  if (!prepared.ok()) {
    MaximumCoreResult result;
    result.status = prepared;
    result.stats.prepare_pair_sweeps = 1;
    result.stats.oracle_calls = prep_report.oracle_calls;
    result.stats.prepare_seconds = prepare_seconds;
    result.stats.seconds = prepare_seconds;
    return result;
  }

  MaximumCoreResult result = FindMaximumCore(components, options);
  result.stats.prepare_pair_sweeps = 1;
  result.stats.oracle_calls = prep_report.oracle_calls;
  result.stats.prepare_seconds = prepare_seconds;
  result.stats.seconds = timer.ElapsedSeconds();
  return result;
}

MaximumCoreResult FindMaximumCore(
    const std::vector<ComponentContext>& components,
    const MaxOptions& options) {
  MaximumCoreResult result;
  Timer timer;
  KRCORE_CHECK(options.bound_refresh > 0) << "bound_refresh must be positive";
  const uint32_t threads = options.parallel.Resolve();

  SharedBest best;
  if (options.use_seed_incumbent && !components.empty()) {
    // Seed the incumbent from the densest component (most structure edges)
    // so every task prunes against a real core from its very first node.
    size_t densest = 0;
    for (size_t i = 1; i < components.size(); ++i) {
      if (components[i].graph.num_edges() >
          components[densest].graph.num_edges()) {
        densest = i;
      }
    }
    // The greedy seeder reads rows; a corrupt mapped component simply
    // forfeits the seed here — its own job below reports the error.
    if (components[densest].EnsureValid().ok()) {
      VertexSet seed =
          GreedySeedCore(components[densest], options.k, options.deadline);
      if (!seed.empty()) best.Offer(std::move(seed));
    }
  }

  std::atomic<bool> failed{false};
  std::vector<std::shared_ptr<MaxJob>> jobs;
  jobs.reserve(components.size());
  for (const auto& comp : components) {
    jobs.push_back(std::make_shared<MaxJob>(comp, options, &best, &failed));
  }

  if (threads <= 1) {
    for (auto& job : jobs) {
      // A whole component can be skipped when even its total size cannot
      // beat the incumbent.
      if (job->comp.size() <= best.Size()) continue;
      // First-touch validation gate (mmap-served components) — must land
      // before the maximizer's constructor walks rows.
      if (Status s = job->comp.EnsureValid(); !s.ok()) {
        job->Finish(MiningStats(), s);
        break;
      }
      ComponentMaximizer root(job);
      root.RunRoot();
      if (!job->status.ok()) break;
    }
  } else {
    // One pool for everything: component roots and the subtrees they fork
    // compete for the same workers, so the skewed one-giant-component case
    // still saturates every core.
    TaskPool pool(threads);
    for (auto& job : jobs) {
      job->pool = &pool;
      pool.Submit([job, &best, &failed] {
        if (failed.load(std::memory_order_relaxed)) return;
        if (job->comp.size() <= best.Size()) return;
        if (Status s = job->comp.EnsureValid(); !s.ok()) {
          job->Finish(MiningStats(), s);
          return;
        }
        ComponentMaximizer root(job);
        root.RunRoot();
      });
    }
    pool.Wait();
    result.stats.tasks_spawned = pool.tasks_spawned();
    result.stats.task_steals = pool.tasks_stolen();
  }

  // Merge stats in component order and stop at the first failure, so a
  // timed-out run reports the same shape of counters as a sequential run
  // (which stops searching there). The shared best itself is unaffected.
  for (auto& job : jobs) {
    ++result.stats.components;
    result.stats.MergeFrom(job->stats);
    if (!job->status.ok()) {
      result.status = job->status;
      break;
    }
  }
  result.best = best.Take();
  result.stats.maximal_found = result.best.empty() ? 0 : 1;
  result.stats.seconds = timer.ElapsedSeconds();
  return result;
}

MaxOptions BasicMaxOptions(uint32_t k) {
  MaxOptions o;
  o.k = k;
  o.bound = SizeBoundKind::kNaive;
  return o;
}

MaxOptions AdvMaxOptions(uint32_t k) {
  MaxOptions o;
  o.k = k;
  o.bound = SizeBoundKind::kDoubleKcore;
  return o;
}

}  // namespace krcore
