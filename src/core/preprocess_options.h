#ifndef KRCORE_CORE_PREPROCESS_OPTIONS_H_
#define KRCORE_CORE_PREPROCESS_OPTIONS_H_

#include <cstdint>
#include <string>

#include "core/dissimilarity_index.h"
#include "graph/graph.h"
#include "util/timer.h"

namespace krcore {

/// Shared configuration for the Algorithm 1 preprocessing (dissimilar-edge
/// removal -> k-core -> components -> dissimilarity materialization).
/// Embedded by PipelineOptions, EnumOptions, MaxOptions and
/// CliqueMethodOptions so the knobs cannot drift between entry points.
struct PreprocessOptions {
  /// Optional hard guard on the number of pairwise similarity evaluations
  /// (sum over components of |comp|^2 / 2). 0 — the default — means
  /// unlimited: the blocked builder streams pairs tile by tile, so large
  /// components no longer require a refusal. Set a positive value to get
  /// the legacy ResourceExhausted behavior for latency-bound callers.
  uint64_t max_pair_budget = 0;

  /// Rows per tile in the blocked pair evaluation. Tiles keep both
  /// attribute ranges hot in cache during the O(n^2) similarity sweep.
  VertexId tile_size = 4096;

  /// Minimum dissimilar degree for a row to receive an O(1) bitset in the
  /// DissimilarityIndex (rows must also be dense relative to the component;
  /// see DissimilarityIndex).
  uint32_t bitset_min_degree = DissimilarityIndex::kDefaultBitsetMinDegree;

  /// Threads used to build per-component indexes (components are
  /// independent). 0 = hardware concurrency. Entry points that own a
  /// ParallelOptions propagate their resolved thread count here.
  uint32_t num_threads = 1;
};

/// Accounting emitted by PrepareComponents: how much similarity work the
/// preprocessing did and how big the resulting substrate is. Mirrors the
/// spec/report pattern of the sjs generator (SNIPPETS.md) — every expensive
/// preparation step reports what it actually built.
struct PreprocessReport {
  uint64_t components = 0;
  uint64_t vertices = 0;          // across surviving components
  uint64_t edges = 0;             // structure edges across components
  /// Intra-component unordered pairs the join had to settle (the full pair
  /// space, for every strategy). Before the filter-and-verify join this was
  /// also the number of metric evaluations; oracle_calls now counts those.
  uint64_t pairs_evaluated = 0;
  /// Pairs the join filter emitted for individual verification (equals
  /// pairs_evaluated on the brute path).
  uint64_t candidate_pairs = 0;
  /// Pairs settled by a certified bound with no metric evaluation
  /// (0 on the brute path). pruned_pairs + oracle_calls == pairs_evaluated.
  uint64_t pruned_pairs = 0;
  /// Metric evaluations actually performed by the join.
  uint64_t oracle_calls = 0;
  uint64_t dissimilar_pairs = 0;  // pairs that violated r
  /// Reserve pairs stored by a score-annotated preparation: similar at the
  /// serving threshold but dissimilar at the cover threshold, kept so any
  /// threshold in between is a pure score filter of this substrate.
  uint64_t reserve_pairs = 0;
  /// Stored scores consulted by a threshold-restricting derivation (0 for
  /// fresh preparations and k-only derivations).
  uint64_t score_filtered_pairs = 0;
  /// dissimilar_pairs / pairs_evaluated (0 when nothing was evaluated).
  double dissimilar_density = 0.0;
  uint64_t index_bytes = 0;       // final CSR + bitset footprint
  /// Estimated peak transient footprint: final indexes plus the largest
  /// concurrent builder pair buffer.
  uint64_t peak_bytes = 0;
  uint64_t bitset_rows = 0;       // rows upgraded to O(1) bitsets
  double seconds = 0.0;

  std::string ToString() const;
};

}  // namespace krcore

#endif  // KRCORE_CORE_PREPROCESS_OPTIONS_H_
