#ifndef KRCORE_CORE_SIZE_BOUNDS_H_
#define KRCORE_CORE_SIZE_BOUNDS_H_

#include <cstdint>
#include <vector>

#include "core/krcore_types.h"
#include "core/search_context.h"

namespace krcore {

/// Upper bounds on the size of any (k,r)-core inside the current M ∪ C of a
/// search context (Sec 6.2). All run on the component's similarity structure
/// without materializing the similarity graph: the per-vertex dissimilar
/// lists are its complement, and similarity degrees are derived as
/// |M ∪ C| - 1 - DP(u, M ∪ C).
///
/// Instantiate once per component; the computer owns reusable scratch so
/// per-node bound evaluation is allocation-free.
class SizeBoundComputer {
 public:
  explicit SizeBoundComputer(const ComponentContext& comp);

  /// Dispatches on `kind`.
  uint64_t Compute(const SearchContext& ctx, SizeBoundKind kind);

  /// |M| + |C| — the trivial bound used by BasicMax.
  uint64_t Naive(const SearchContext& ctx) const;

  /// Greedy-coloring bound: any (k,r)-core is a clique in the similarity
  /// graph, so the color count of a proper coloring bounds its size [31].
  /// Colors greedily in ascending-DP (descending similarity degree) order.
  uint64_t Color(const SearchContext& ctx);

  /// k-core bound: a c-clique is a (c-1)-core of the similarity graph, so
  /// (degeneracy of the similarity graph) + 1 bounds the clique size [31].
  uint64_t Kcore(const SearchContext& ctx);

  /// min(Color, Kcore) — the paper's Color+Kcore baseline.
  uint64_t ColorPlusKcore(const SearchContext& ctx);

  /// The paper's (k,k')-core bound (Definition 6 / Theorem 7 / Algorithm 6):
  /// the largest k' such that some U ⊆ M ∪ C induces a k-core on the
  /// structure graph and a k'-core on the similarity graph; any (k,r)-core
  /// R ⊆ M ∪ C has |R| <= k'_max + 1.
  ///
  /// Peels by *descending dissimilarity count* instead of ascending
  /// similarity degree — identical orders, since degsim(u) = |H|-1 - DP(u,H)
  /// — so only the sparse dissimilar lists are touched per removal.
  /// Structure violations cascade (KK'coreUpdate) at the current k' level;
  /// with structure_k = 0 the cascade is disabled and the result is the
  /// similarity-graph degeneracy + 1 (== Kcore). O(ne + nd) per call.
  uint64_t KkPrime(const SearchContext& ctx, uint32_t structure_k);

 private:
  const ComponentContext& comp_;
  // Shared scratch (sized to the component).
  std::vector<char> in_h_;
  std::vector<uint32_t> dp_;
  std::vector<uint32_t> deg_;
  std::vector<VertexId> members_;
  std::vector<VertexId> cascade_;
  std::vector<std::vector<VertexId>> buckets_;
  // Coloring scratch.
  std::vector<uint32_t> color_;
  std::vector<uint32_t> color_total_;
  std::vector<uint32_t> dis_with_color_;
};

/// One-off convenience wrappers (tests and small callers).
uint64_t NaiveSizeBound(const SearchContext& ctx);
uint64_t ColorSizeBound(const SearchContext& ctx);
uint64_t KcoreSizeBound(const SearchContext& ctx);
uint64_t ColorPlusKcoreSizeBound(const SearchContext& ctx);
uint64_t KkPrimeSizeBound(const SearchContext& ctx, uint32_t structure_k);
uint64_t ComputeSizeBound(const SearchContext& ctx, SizeBoundKind kind);

}  // namespace krcore

#endif  // KRCORE_CORE_SIZE_BOUNDS_H_
