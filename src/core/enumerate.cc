#include "core/enumerate.h"

#include <algorithm>
#include <atomic>

#include "core/early_termination.h"
#include "core/parallel.h"
#include "core/maximal_check.h"
#include "core/result_set.h"
#include "core/search_context.h"
#include "core/search_order.h"
#include "graph/connectivity.h"
#include "util/logging.h"

namespace krcore {
namespace {

/// Per-component recursive enumerator implementing Algorithm 3 (and, with
/// the advanced features disabled, the pruned Algorithm 1 baseline).
class ComponentEnumerator {
 public:
  ComponentEnumerator(const ComponentContext& comp, const EnumOptions& options,
                      MiningStats* stats, ResultSet* results)
      : comp_(comp),
        options_(options),
        stats_(stats),
        results_(results),
        ctx_(comp, options.k,
             /*track_excluded=*/options.use_early_termination ||
                 options.use_smart_maximal_check),
        policy_(options.order, BranchOrder::kExpandFirst, options.lambda,
                options.seed),
        et_checker_(comp),
        maximal_checker_(comp) {}

  Status Run() {
    // Root node: the whole component is C; apply the validation rules that
    // hold before any branching.
    if (options_.use_retention) {
      if (!ctx_.PromoteSimilarityFree(&stats_->promotions)) return Status::OK();
    }
    return Visit();
  }

 private:
  /// One search node: prune/terminate/emit or branch (Algorithm 3).
  Status Visit() {
    if ((stats_->search_nodes++ & 0x3F) == 0 && options_.deadline.Expired()) {
      return Status::DeadlineExceeded("enumeration budget expired");
    }
    KRCORE_DCHECK(!ctx_.dead());

    // Early termination (Theorem 5).
    if (options_.use_early_termination && et_checker_.CanTerminate(ctx_)) {
      ++stats_->early_terminations;
      return Status::OK();
    }

    // Emission condition: with retention, C == SF(C) makes M ∪ C a
    // (k,r)-core (Theorem 4); without retention we only emit at C == ∅.
    bool emit = options_.use_retention ? ctx_.CandidatesAllSimilarityFree()
                                       : ctx_.c_list().empty();
    if (emit) {
      return Emit();
    }

    // Choose the branching vertex among C \ SF(C) (Thm 4) or all of C.
    BranchChoice choice =
        policy_.Choose(ctx_, /*restrict_to_non_sf=*/options_.use_retention,
                       /*sum_branches=*/true);
    if (options_.use_retention) {
      stats_->retained_skips += ctx_.sf_count();
    }
    VertexId u = choice.vertex;

    // Expand branch.
    {
      size_t mark = ctx_.Mark();
      ++stats_->expand_branches;
      bool alive = ctx_.Expand(u);
      if (alive && options_.use_retention) {
        alive = ctx_.PromoteSimilarityFree(&stats_->promotions);
      }
      Status s = alive ? Visit() : Status::OK();
      ctx_.RewindTo(mark);
      if (!s.ok()) return s;
    }

    // Shrink branch.
    {
      size_t mark = ctx_.Mark();
      ++stats_->shrink_branches;
      bool alive = ctx_.Shrink(u);
      if (alive && options_.use_retention) {
        alive = ctx_.PromoteSimilarityFree(&stats_->promotions);
      }
      Status s = alive ? Visit() : Status::OK();
      ctx_.RewindTo(mark);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  /// Emits the connected components of M ∪ C as candidate (k,r)-cores,
  /// running the smart maximal check when enabled. With M non-empty the
  /// connectivity reduction guarantees a single component.
  Status Emit() {
    std::vector<VertexId> mc = ctx_.MaterializeMC();
    if (mc.empty()) return Status::OK();
    auto components = ComponentsOfSubset(comp_.graph, mc);
    for (auto& local_core : components) {
      ++stats_->emitted_candidates;
      if (options_.use_smart_maximal_check) {
        ++stats_->maximal_check_calls;
        MaximalVerdict verdict = maximal_checker_.Check(
            ctx_, local_core, options_.maximal_check_order, options_.lambda,
            options_.deadline, &stats_->maximal_check_nodes);
        if (verdict == MaximalVerdict::kDeadlineExceeded) {
          return Status::DeadlineExceeded("maximal check budget expired");
        }
        if (verdict == MaximalVerdict::kNotMaximal) continue;
      }
      VertexSet parent_ids;
      parent_ids.reserve(local_core.size());
      for (VertexId v : local_core) parent_ids.push_back(comp_.to_parent[v]);
      std::sort(parent_ids.begin(), parent_ids.end());
      results_->Insert(std::move(parent_ids));
    }
    return Status::OK();
  }

  const ComponentContext& comp_;
  const EnumOptions& options_;
  MiningStats* stats_;
  ResultSet* results_;
  SearchContext ctx_;
  SearchOrderPolicy policy_;
  EarlyTerminationChecker et_checker_;
  MaximalCheckSearcher maximal_checker_;
};

}  // namespace

MaximalCoresResult EnumerateMaximalCores(const Graph& g,
                                         const SimilarityOracle& oracle,
                                         const EnumOptions& options) {
  MaximalCoresResult result;
  Timer timer;

  const uint32_t threads = options.parallel.Resolve();
  PipelineOptions pipe;
  pipe.k = options.k;
  pipe.preprocess = options.preprocess;
  pipe.preprocess.num_threads = threads;
  pipe.deadline = options.deadline;
  std::vector<ComponentContext> components;
  result.status = PrepareComponents(g, oracle, pipe, &components);
  if (!result.status.ok()) return result;

  ResultSet results;
  if (threads <= 1 || components.size() <= 1) {
    for (const auto& comp : components) {
      ++result.stats.components;
      ComponentEnumerator enumerator(comp, options, &result.stats, &results);
      result.status = enumerator.Run();
      if (!result.status.ok()) break;
    }
  } else {
    // Work-stealing per-component driver: components are independent search
    // units (Sec 4.1), so each worker claims the next unsearched component.
    // Every component gets its own stats/results slot; the merge below is
    // deterministic because components partition the vertex set (no core can
    // be produced by two different components) and the final TakeSorted /
    // FilterNonMaximal make the output order canonical.
    std::vector<MiningStats> stats(components.size());
    std::vector<ResultSet> sets(components.size());
    std::vector<Status> statuses(components.size());
    std::atomic<bool> failed{false};
    ParallelFor(threads, components.size(), [&](size_t i) {
      if (failed.load(std::memory_order_relaxed)) return;  // drain quickly
      ComponentEnumerator enumerator(components[i], options, &stats[i],
                                     &sets[i]);
      statuses[i] = enumerator.Run();
      if (!statuses[i].ok()) failed.store(true, std::memory_order_relaxed);
    });
    // Merge in component order, stopping at the first failure like the
    // sequential loop does (its partial results are kept, later components'
    // are dropped), so a timed-out run never *grows* with the thread count.
    for (size_t i = 0; i < components.size(); ++i) {
      ++result.stats.components;
      result.stats.MergeFrom(stats[i]);
      for (auto& core : sets[i].TakeSorted()) results.Insert(std::move(core));
      if (!statuses[i].ok()) {
        result.status = statuses[i];
        break;
      }
    }
  }

  // Variants without the smart maximal check filter non-maximal cores the
  // naive way (Algorithm 1 lines 6-8). The smart check makes this a no-op,
  // but emitted results from *different* branches can still duplicate or
  // nest across components of a C == SF(C) emission with empty M; the filter
  // keeps the output canonical in all configurations.
  results.FilterNonMaximal();
  result.cores = results.TakeSorted();
  result.stats.maximal_found = result.cores.size();
  result.stats.seconds = timer.ElapsedSeconds();
  return result;
}

EnumOptions BasicEnumOptions(uint32_t k) {
  EnumOptions o;
  o.k = k;
  o.use_retention = false;
  o.use_early_termination = false;
  o.use_smart_maximal_check = false;
  o.order = VertexOrder::kDelta1ThenDelta2;
  return o;
}

EnumOptions AdvEnumOptions(uint32_t k) {
  EnumOptions o;
  o.k = k;
  return o;
}

}  // namespace krcore
