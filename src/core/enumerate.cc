#include "core/enumerate.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/early_termination.h"
#include "core/maximal_check.h"
#include "core/parallel.h"
#include "core/result_set.h"
#include "core/search_context.h"
#include "core/search_order.h"
#include "graph/connectivity.h"
#include "util/logging.h"

namespace krcore {
namespace {

/// A task's position in the component's fork tree: the root task has an
/// empty path; a task forked as the parent's n-th spawn appends n. Paths are
/// unique, and merging the per-task ResultSets in lexicographic path order
/// keeps the merge independent of worker scheduling. (Completed-run output
/// is byte-identical across thread counts regardless: enumeration explores
/// the same search space however it is split, and the final
/// FilterNonMaximal + TakeSorted canonicalize the set.)
using TaskPath = std::vector<uint32_t>;

/// Shared per-component enumeration state; every task of the component
/// deposits its (path, results) part and merges stats/status here.
struct EnumJob {
  EnumJob(const ComponentContext& c, const EnumOptions& o,
          std::atomic<bool>* f)
      : comp(c), options(o), failed(f) {}

  const ComponentContext& comp;
  const EnumOptions& options;
  std::atomic<bool>* failed;  // any task of any component errored: drain
  TaskPool* pool = nullptr;   // null = sequential (no subtree forking)

  std::mutex mu;
  MiningStats stats;
  Status status;  // first non-OK of any task
  std::vector<std::pair<TaskPath, ResultSet>> parts;

  void Finish(const MiningStats& task_stats, const Status& task_status,
              TaskPath path, ResultSet results) {
    if (!task_status.ok()) failed->store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu);
    stats.MergeFrom(task_stats);
    if (status.ok() && !task_status.ok()) status = task_status;
    parts.emplace_back(std::move(path), std::move(results));
  }
};

/// One task of the per-component recursive enumerator implementing
/// Algorithm 3 (and, with the advanced features disabled, the pruned
/// Algorithm 1 baseline): either the component root or a forked subtree.
class ComponentEnumerator {
 public:
  /// Root task: fresh context over the whole component.
  explicit ComponentEnumerator(std::shared_ptr<EnumJob> job)
      : ComponentEnumerator(std::move(job), /*placeholder=*/0) {}

  /// Subtree task: adopts a forked context at `depth`; Run(expand, u)
  /// applies the deferred branch op first.
  ComponentEnumerator(std::shared_ptr<EnumJob> job, SearchContext&& ctx,
                      uint32_t depth, TaskPath path)
      : job_(std::move(job)),
        ctx_(std::move(ctx)),
        depth_(depth),
        path_(std::move(path)),
        policy_(job_->options.order, BranchOrder::kExpandFirst,
                job_->options.lambda, job_->options.seed),
        et_checker_(job_->comp),
        maximal_checker_(job_->comp) {}

  void RunRoot() {
    // Root node: the whole component is C; apply the validation rules that
    // hold before any branching.
    Status s = Status::OK();
    bool alive = true;
    if (options().use_retention) {
      alive = ctx_.PromoteSimilarityFree(&stats_.promotions);
    }
    if (alive) s = Visit(depth_);
    job_->Finish(stats_, s, std::move(path_), std::move(results_));
  }

  void RunBranch(bool expand, VertexId u) {
    Status s = Status::OK();
    bool alive;
    if (expand) {
      ++stats_.expand_branches;
      alive = ctx_.Expand(u);
    } else {
      ++stats_.shrink_branches;
      alive = ctx_.Shrink(u);
    }
    if (alive && options().use_retention) {
      alive = ctx_.PromoteSimilarityFree(&stats_.promotions);
    }
    if (alive) s = Visit(depth_);
    job_->Finish(stats_, s, std::move(path_), std::move(results_));
  }

 private:
  ComponentEnumerator(std::shared_ptr<EnumJob> job, int /*placeholder*/)
      : job_(std::move(job)),
        ctx_(job_->comp, job_->options.k,
             /*track_excluded=*/job_->options.use_early_termination ||
                 job_->options.use_smart_maximal_check),
        policy_(job_->options.order, BranchOrder::kExpandFirst,
                job_->options.lambda, job_->options.seed),
        et_checker_(job_->comp),
        maximal_checker_(job_->comp) {}

  const EnumOptions& options() const { return job_->options; }

  /// One search node: prune/terminate/emit or branch (Algorithm 3).
  Status Visit(uint32_t depth) {
    if ((stats_.search_nodes++ & 0x3F) == 0 && options().deadline.Expired()) {
      return Status::DeadlineExceeded("enumeration budget expired");
    }
    // Another task failed (deadline): drain quickly, its status wins.
    if (job_->failed->load(std::memory_order_relaxed)) return Status::OK();
    KRCORE_DCHECK(!ctx_.dead());

    // Early termination (Theorem 5).
    if (options().use_early_termination && et_checker_.CanTerminate(ctx_)) {
      ++stats_.early_terminations;
      return Status::OK();
    }

    // Emission condition: with retention, C == SF(C) makes M ∪ C a
    // (k,r)-core (Theorem 4); without retention we only emit at C == ∅.
    bool emit = options().use_retention ? ctx_.CandidatesAllSimilarityFree()
                                        : ctx_.c_list().empty();
    if (emit) {
      return Emit();
    }

    // Choose the branching vertex among C \ SF(C) (Thm 4) or all of C.
    BranchChoice choice =
        policy_.Choose(ctx_, /*restrict_to_non_sf=*/options().use_retention,
                       /*sum_branches=*/true);
    if (options().use_retention) {
      stats_.retained_skips += ctx_.sf_count();
    }
    VertexId u = choice.vertex;

    if (job_->pool != nullptr && depth < options().parallel.split_depth &&
        job_->pool->BacklogLow()) {
      // Fork the shrink branch onto the shared pool; continue the expand
      // branch inline. Enumeration explores both branches regardless, so
      // the forked task's results are the same set it would have produced
      // sequentially — the path tag fixes the merge order and the final
      // canonical sort makes the output schedule-independent. Skipped when
      // the pool already has a backlog: queued forks are dead weight (each
      // holds a full state copy).
      Spawn(/*expand=*/false, u, depth + 1);
      size_t mark = ctx_.Mark();
      ++stats_.expand_branches;
      bool alive = ctx_.Expand(u);
      if (alive && options().use_retention) {
        alive = ctx_.PromoteSimilarityFree(&stats_.promotions);
      }
      Status s = alive ? Visit(depth + 1) : Status::OK();
      ctx_.RewindTo(mark);
      return s;
    }

    // Expand branch.
    {
      size_t mark = ctx_.Mark();
      ++stats_.expand_branches;
      bool alive = ctx_.Expand(u);
      if (alive && options().use_retention) {
        alive = ctx_.PromoteSimilarityFree(&stats_.promotions);
      }
      Status s = alive ? Visit(depth + 1) : Status::OK();
      ctx_.RewindTo(mark);
      if (!s.ok()) return s;
    }

    // Shrink branch.
    {
      size_t mark = ctx_.Mark();
      ++stats_.shrink_branches;
      bool alive = ctx_.Shrink(u);
      if (alive && options().use_retention) {
        alive = ctx_.PromoteSimilarityFree(&stats_.promotions);
      }
      Status s = alive ? Visit(depth + 1) : Status::OK();
      ctx_.RewindTo(mark);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  void Spawn(bool expand, VertexId u, uint32_t depth) {
    TaskPath child_path = path_;
    child_path.push_back(spawn_seq_++);
    // std::function requires copyable captures; box the moveable state.
    auto forked = std::make_shared<SearchContext>(ctx_.Fork());
    auto boxed_path = std::make_shared<TaskPath>(std::move(child_path));
    auto job = job_;
    job_->pool->Submit([job, forked, boxed_path, expand, u, depth]() mutable {
      if (job->failed->load(std::memory_order_relaxed)) {
        job->Finish(MiningStats(), Status::OK(), std::move(*boxed_path),
                    ResultSet());
        return;
      }
      ComponentEnumerator task(job, std::move(*forked), depth,
                               std::move(*boxed_path));
      task.RunBranch(expand, u);
    });
  }

  /// Emits the connected components of M ∪ C as candidate (k,r)-cores,
  /// running the smart maximal check when enabled. With M non-empty the
  /// connectivity reduction guarantees a single component.
  Status Emit() {
    std::vector<VertexId> mc = ctx_.MaterializeMC();
    if (mc.empty()) return Status::OK();
    auto components = ComponentsOfSubset(job_->comp.graph, mc);
    for (auto& local_core : components) {
      ++stats_.emitted_candidates;
      if (options().use_smart_maximal_check) {
        ++stats_.maximal_check_calls;
        MaximalVerdict verdict = maximal_checker_.Check(
            ctx_, local_core, options().maximal_check_order, options().lambda,
            options().deadline, &stats_.maximal_check_nodes);
        if (verdict == MaximalVerdict::kDeadlineExceeded) {
          return Status::DeadlineExceeded("maximal check budget expired");
        }
        if (verdict == MaximalVerdict::kNotMaximal) continue;
      }
      VertexSet parent_ids;
      parent_ids.reserve(local_core.size());
      for (VertexId v : local_core) {
        parent_ids.push_back(job_->comp.to_parent[v]);
      }
      std::sort(parent_ids.begin(), parent_ids.end());
      results_.Insert(std::move(parent_ids));
    }
    return Status::OK();
  }

  std::shared_ptr<EnumJob> job_;
  SearchContext ctx_;
  uint32_t depth_ = 0;
  TaskPath path_;
  uint32_t spawn_seq_ = 0;
  MiningStats stats_;
  ResultSet results_;
  SearchOrderPolicy policy_;
  EarlyTerminationChecker et_checker_;
  MaximalCheckSearcher maximal_checker_;
};

}  // namespace

MaximalCoresResult EnumerateMaximalCores(const Graph& g,
                                         const SimilarityOracle& oracle,
                                         const EnumOptions& options) {
  Timer timer;
  const uint32_t threads = options.parallel.Resolve();
  PipelineOptions pipe;
  pipe.k = options.k;
  pipe.preprocess = options.preprocess;
  pipe.preprocess.num_threads = threads;
  pipe.join_strategy = options.join_strategy;
  pipe.deadline = options.deadline;
  std::vector<ComponentContext> components;
  PreprocessReport prep_report;
  Status prepared = PrepareComponents(g, oracle, pipe, &components,
                                      &prep_report);
  const double prepare_seconds = timer.ElapsedSeconds();
  if (!prepared.ok()) {
    MaximalCoresResult result;
    result.status = prepared;
    result.stats.prepare_pair_sweeps = 1;
    result.stats.oracle_calls = prep_report.oracle_calls;
    result.stats.prepare_seconds = prepare_seconds;
    result.stats.seconds = prepare_seconds;
    return result;
  }

  MaximalCoresResult result = EnumerateMaximalCores(components, options);
  result.stats.prepare_pair_sweeps = 1;
  result.stats.oracle_calls = prep_report.oracle_calls;
  result.stats.prepare_seconds = prepare_seconds;
  result.stats.seconds = timer.ElapsedSeconds();
  return result;
}

MaximalCoresResult EnumerateMaximalCores(
    const std::vector<ComponentContext>& components,
    const EnumOptions& options) {
  MaximalCoresResult result;
  Timer timer;
  const uint32_t threads = options.parallel.Resolve();

  std::atomic<bool> failed{false};
  std::vector<std::shared_ptr<EnumJob>> jobs;
  jobs.reserve(components.size());
  for (const auto& comp : components) {
    jobs.push_back(std::make_shared<EnumJob>(comp, options, &failed));
  }

  if (threads <= 1) {
    for (auto& job : jobs) {
      // First-touch validation gate for mmap-served components: the
      // enumerator's constructor already walks rows, so the verdict must
      // land before it exists. A corrupt component fails only the queries
      // that touch it.
      if (Status s = job->comp.EnsureValid(); !s.ok()) {
        job->Finish(MiningStats(), s, TaskPath{}, ResultSet());
        break;
      }
      ComponentEnumerator root(job);
      root.RunRoot();
      if (!job->status.ok()) break;
    }
  } else {
    // One pool for component roots and the subtree tasks they fork (Sec 4.1
    // makes components independent; split_depth subdivides the big ones).
    TaskPool pool(threads);
    for (auto& job : jobs) {
      job->pool = &pool;
      pool.Submit([job, &failed] {
        if (failed.load(std::memory_order_relaxed)) return;
        if (Status s = job->comp.EnsureValid(); !s.ok()) {
          job->Finish(MiningStats(), s, TaskPath{}, ResultSet());
          return;
        }
        ComponentEnumerator root(job);
        root.RunRoot();
      });
    }
    pool.Wait();
    result.stats.tasks_spawned = pool.tasks_spawned();
    result.stats.task_steals = pool.tasks_stolen();
  }

  // Merge in component order — and inside a component in task-path order —
  // stopping at the first failing component like a sequential run does (its
  // partial results are kept, later components' are dropped). A timed-out
  // run's partial set is schedule-dependent (see EnumOptions::parallel).
  ResultSet results;
  for (auto& job : jobs) {
    ++result.stats.components;
    result.stats.MergeFrom(job->stats);
    std::sort(job->parts.begin(), job->parts.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& part : job->parts) {
      for (auto& core : part.second.TakeSorted()) {
        results.Insert(std::move(core));
      }
    }
    if (!job->status.ok()) {
      result.status = job->status;
      break;
    }
  }

  // Variants without the smart maximal check filter non-maximal cores the
  // naive way (Algorithm 1 lines 6-8). The smart check makes this a no-op,
  // but emitted results from *different* branches can still duplicate or
  // nest across components of a C == SF(C) emission with empty M; the filter
  // keeps the output canonical in all configurations.
  results.FilterNonMaximal();
  result.cores = results.TakeSorted();
  result.stats.maximal_found = result.cores.size();
  result.stats.seconds = timer.ElapsedSeconds();
  return result;
}

EnumOptions BasicEnumOptions(uint32_t k) {
  EnumOptions o;
  o.k = k;
  o.use_retention = false;
  o.use_early_termination = false;
  o.use_smart_maximal_check = false;
  o.order = VertexOrder::kDelta1ThenDelta2;
  return o;
}

EnumOptions AdvEnumOptions(uint32_t k) {
  EnumOptions o;
  o.k = k;
  return o;
}

}  // namespace krcore
