#include "core/search_order.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.h"

namespace krcore {
namespace {

/// Returns the highest-degree eligible candidate — also the rule used at the
/// initial stage (M = ∅) for the measurement-based orders (Sec 7.1).
VertexId HighestDegreeCandidate(const SearchContext& ctx,
                                bool restrict_to_non_sf) {
  const VertexList& c = ctx.c_list();
  VertexId best = kInvalidVertex;
  uint32_t best_deg = 0;
  for (VertexId u = c.First(); u != kInvalidVertex; u = c.Next(u)) {
    if (restrict_to_non_sf && ctx.dp_c(u) == 0) continue;
    uint32_t d = ctx.deg_mc(u);
    if (best == kInvalidVertex || d > best_deg ||
        (d == best_deg && u < best)) {
      best = u;
      best_deg = d;
    }
  }
  return best;
}

}  // namespace

SearchOrderPolicy::DeltaEstimate SearchOrderPolicy::EstimateDeltas(
    const SearchContext& ctx, VertexId u) {
  const ComponentContext& comp = ctx.component();
  const double total_dp = static_cast<double>(ctx.dissimilar_pairs_c());
  const double total_edges = static_cast<double>(ctx.edges_mc());
  DeltaEstimate est;

  // --- Expand branch: the directly pruned vertices are u's dissimilar
  // candidates (Thm 3); second hop: their neighbors in C that would fall
  // below degree k (Thm 2). The Sec 7.2 estimate only looks two hops out;
  // we additionally subsample large pruned sets (extrapolating linearly) so
  // a node's ordering never costs more than O(|C| * kSampleCap * d).
  {
    constexpr size_t kSampleCap = 24;
    std::vector<VertexId>& removed = scratch_removed_;
    removed.clear();
    for (VertexId x : comp.dissimilar[u]) {
      if (ctx.state(x) == VertexState::kInC) removed.push_back(x);
    }
    double dp_drop = 0.0, edge_drop = 0.0;
    size_t sampled = std::min(removed.size(), kSampleCap);
    for (size_t i = 0; i < sampled; ++i) {
      VertexId x = removed[i];
      dp_drop += ctx.dp_c(x);
      edge_drop += ctx.deg_mc(x);
      // Two-hop: structure victims among x's neighbors.
      for (VertexId y : comp.graph.neighbors(x)) {
        if (ctx.state(y) == VertexState::kInC && ctx.deg_mc(y) == ctx.k()) {
          dp_drop += ctx.dp_c(y);
          edge_drop += ctx.deg_mc(y);
        }
      }
    }
    if (sampled > 0 && sampled < removed.size()) {
      double scale = static_cast<double>(removed.size()) / sampled;
      dp_drop *= scale;
      edge_drop *= scale;
    }
    // u itself leaves C (its dissimilar pairs leave DP(C) as well).
    dp_drop += ctx.dp_c(u);
    est.d1_expand = total_dp > 0.0 ? std::min(1.0, dp_drop / total_dp) : 0.0;
    est.d2_expand =
        total_edges > 0.0 ? std::min(1.0, edge_drop / total_edges) : 0.0;
  }

  // --- Shrink branch: u is removed; second hop: u's neighbors in C at the
  // degree boundary.
  {
    double dp_drop = ctx.dp_c(u);
    double edge_drop = ctx.deg_mc(u);
    for (VertexId y : comp.graph.neighbors(u)) {
      if (ctx.state(y) == VertexState::kInC && ctx.deg_mc(y) == ctx.k()) {
        dp_drop += ctx.dp_c(y);
        edge_drop += ctx.deg_mc(y);
      }
    }
    est.d1_shrink = total_dp > 0.0 ? std::min(1.0, dp_drop / total_dp) : 0.0;
    est.d2_shrink =
        total_edges > 0.0 ? std::min(1.0, edge_drop / total_edges) : 0.0;
  }
  return est;
}

BranchChoice SearchOrderPolicy::Choose(const SearchContext& ctx,
                                       bool restrict_to_non_sf,
                                       bool sum_branches) {
  const VertexList& c = ctx.c_list();
  KRCORE_DCHECK(!c.empty());

  BranchChoice choice;
  // Fixed branch orders short-circuit the per-branch scoring below.
  auto FinalizeBranch = [this](BranchChoice ch, bool adaptive_expand_first) {
    switch (branch_order_) {
      case BranchOrder::kAdaptive:
        ch.expand_first = adaptive_expand_first;
        break;
      case BranchOrder::kExpandFirst:
        ch.expand_first = true;
        break;
      case BranchOrder::kShrinkFirst:
        ch.expand_first = false;
        break;
    }
    return ch;
  };

  if (order_ == VertexOrder::kRandom) {
    std::vector<VertexId>& eligible = scratch_eligible_;
    eligible.clear();
    for (VertexId u = c.First(); u != kInvalidVertex; u = c.Next(u)) {
      if (restrict_to_non_sf && ctx.dp_c(u) == 0) continue;
      eligible.push_back(u);
    }
    KRCORE_DCHECK(!eligible.empty());
    choice.vertex = eligible[rng_.NextBounded(eligible.size())];
    return FinalizeBranch(choice, true);
  }

  if (order_ == VertexOrder::kDegree) {
    choice.vertex = HighestDegreeCandidate(ctx, restrict_to_non_sf);
    return FinalizeBranch(choice, true);
  }

  // Measurement-based orders. Initial stage: highest degree (Sec 7.1).
  if (ctx.m_list().empty() && ctx.c_list().size() == 0) {
    // unreachable; guard kept for clarity
  }
  if (ctx.m_list().empty()) {
    choice.vertex = HighestDegreeCandidate(ctx, restrict_to_non_sf);
    return FinalizeBranch(choice, true);
  }

  double best_score = -1e300;
  double best_tiebreak = 1e300;
  bool best_expand_first = true;
  for (VertexId u = c.First(); u != kInvalidVertex; u = c.Next(u)) {
    if (restrict_to_non_sf && ctx.dp_c(u) == 0) continue;
    DeltaEstimate est = EstimateDeltas(ctx, u);
    double score = 0.0, tiebreak = 0.0;
    bool expand_first = true;
    switch (order_) {
      case VertexOrder::kDelta1: {
        double se = est.d1_expand, ss = est.d1_shrink;
        score = sum_branches ? se + ss : std::max(se, ss);
        expand_first = se >= ss;
        break;
      }
      case VertexOrder::kDelta2: {
        // Prefer the smallest relative edge loss.
        double se = -est.d2_expand, ss = -est.d2_shrink;
        score = sum_branches ? se + ss : std::max(se, ss);
        expand_first = se >= ss;
        break;
      }
      case VertexOrder::kDelta1ThenDelta2: {
        double se = est.d1_expand, ss = est.d1_shrink;
        score = sum_branches ? se + ss : std::max(se, ss);
        tiebreak = sum_branches ? est.d2_expand + est.d2_shrink
                                : std::min(est.d2_expand, est.d2_shrink);
        expand_first = se >= ss;
        break;
      }
      case VertexOrder::kLambdaCombo: {
        double se = lambda_ * est.d1_expand - est.d2_expand;
        double ss = lambda_ * est.d1_shrink - est.d2_shrink;
        score = sum_branches ? se + ss : std::max(se, ss);
        expand_first = se >= ss;
        break;
      }
      default:
        KRCORE_CHECK(false) << "unhandled order";
    }
    if (score > best_score ||
        (score == best_score && tiebreak < best_tiebreak)) {
      best_score = score;
      best_tiebreak = tiebreak;
      choice.vertex = u;
      best_expand_first = expand_first;
    }
  }
  KRCORE_DCHECK(choice.vertex != kInvalidVertex);
  return FinalizeBranch(choice, best_expand_first);
}

}  // namespace krcore
