#include "core/workspace_update.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <sstream>
#include <utility>

#include "graph/graph_builder.h"
#include "similarity/join/self_join.h"
#include "util/failpoint.h"
#include "util/timer.h"

namespace krcore {
namespace {

/// Sorted-row mutation helpers for the maintained similarity adjacency.
/// Both return false when the row already had / did not have `v`, which is
/// how no-op updates (re-insert, remove-absent) are detected.
bool InsertSorted(std::vector<VertexId>& row, VertexId v) {
  auto it = std::lower_bound(row.begin(), row.end(), v);
  if (it != row.end() && *it == v) return false;
  row.insert(it, v);
  return true;
}

bool EraseSorted(std::vector<VertexId>& row, VertexId v) {
  auto it = std::lower_bound(row.begin(), row.end(), v);
  if (it == row.end() || *it != v) return false;
  row.erase(it);
  return true;
}

}  // namespace

void UpdateReport::MergeFrom(const UpdateReport& other) {
  batches += other.batches;
  updates_applied += other.updates_applied;
  sim_edges_added += other.sim_edges_added;
  sim_edges_removed += other.sim_edges_removed;
  vertices_peeled += other.vertices_peeled;
  vertices_promoted += other.vertices_promoted;
  components_reused += other.components_reused;
  components_rebuilt += other.components_rebuilt;
  rows_rebuilt += other.rows_rebuilt;
  pairs_from_cache += other.pairs_from_cache;
  pairs_from_oracle += other.pairs_from_oracle;
  fallback_rebuilds += other.fallback_rebuilds;
  rolled_back_batches += other.rolled_back_batches;
  seconds += other.seconds;
}

std::string UpdateReport::ToString() const {
  std::ostringstream os;
  os << "batches=" << batches << " updates=" << updates_applied
     << " sim+=" << sim_edges_added << " sim-=" << sim_edges_removed
     << " peeled=" << vertices_peeled << " promoted=" << vertices_promoted
     << " reused=" << components_reused << " rebuilt=" << components_rebuilt
     << " rows=" << rows_rebuilt << " cached_pairs=" << pairs_from_cache
     << " oracle_pairs=" << pairs_from_oracle
     << " fallbacks=" << fallback_rebuilds
     << " rolled_back=" << rolled_back_batches << " sec=" << seconds;
  return os.str();
}

WorkspaceUpdater::WorkspaceUpdater(const Graph& g,
                                   const SimilarityOracle& oracle,
                                   PreparedWorkspace* ws)
    : ws_(ws), oracle_(oracle) {
  if (ws_->k == 0) {
    init_status_ = Status::InvalidArgument(
        "workspace has k == 0; prepare it with PrepareWorkspace first");
    return;
  }
  if (ws_->threshold != oracle.threshold()) {
    init_status_ = Status::InvalidArgument(
        "oracle threshold does not match the workspace's baked-in r; bind "
        "the oracle with WithThreshold(ws.threshold)");
    return;
  }
  if (ws_->scored && ws_->is_distance != oracle.is_distance()) {
    init_status_ = Status::InvalidArgument(
        "oracle metric direction does not match the score-annotated "
        "workspace's; the stored scores would be filtered the wrong way");
    return;
  }
  // The same dissimilar-edge filter PrepareComponents runs (one oracle call
  // per edge), kept as mutable sorted rows over the full vertex universe —
  // non-core vertices included, since they are the promotion frontier.
  const VertexId n = g.num_vertices();
  sim_adj_.assign(n, {});
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v && oracle_.Similar(u, v)) {
        sim_adj_[u].push_back(v);
        sim_adj_[v].push_back(u);
      }
    }
  }
  for (auto& row : sim_adj_) std::sort(row.begin(), row.end());
  in_core_.assign(n, 0);
  for (const auto& comp : ws_->components) {
    for (VertexId p : comp.to_parent) {
      if (p >= n) {
        init_status_ = Status::InvalidArgument(
            "workspace references vertex ids beyond the bound graph");
        return;
      }
      in_core_[p] = 1;
    }
  }
  RebuildComponentMap();
  touched_flag_.assign(n, 0);
  candidate_flag_.assign(n, 0);
  candidate_degree_.assign(n, 0);
  dirty_flag_.assign(n, 0);
  visited_flag_.assign(n, 0);
  remap_.assign(n, kInvalidVertex);
  old_local_map_.assign(n, kInvalidVertex);
}

void WorkspaceUpdater::RebuildComponentMap() {
  comp_of_.assign(sim_adj_.size(), kNoComponent);
  for (size_t c = 0; c < ws_->components.size(); ++c) {
    for (VertexId p : ws_->components[c].to_parent) {
      comp_of_[p] = static_cast<uint32_t>(c);
    }
  }
}

uint32_t WorkspaceUpdater::CoreDegree(VertexId v) const {
  uint32_t d = 0;
  for (VertexId w : sim_adj_[v]) d += in_core_[w];
  return d;
}

bool WorkspaceUpdater::HasSimilarEdge(VertexId u, VertexId v) const {
  const auto& row = sim_adj_[u];
  return std::binary_search(row.begin(), row.end(), v);
}

Status WorkspaceUpdater::ApplyEdgeUpdates(std::span<const EdgeUpdate> updates,
                                          const UpdateOptions& options,
                                          UpdateReport* report) {
  Timer timer;
  if (!init_status_.ok()) return init_status_;
  const VertexId n = num_vertices();
  const uint32_t k = ws_->k;
  UpdateReport batch;
  batch.batches = 1;

  // Validate the whole batch before mutating anything, so an error leaves
  // the workspace untouched.
  for (const EdgeUpdate& upd : updates) {
    if (upd.u >= n || upd.v >= n) {
      return Status::InvalidArgument(
          "edge update references vertex id beyond the graph (" +
          std::to_string(upd.u) + ", " + std::to_string(upd.v) +
          "); the vertex universe is fixed at preparation time");
    }
    if (upd.u == upd.v) {
      return Status::InvalidArgument("edge update is a self-loop (" +
                                     std::to_string(upd.u) + ")");
    }
  }

  // --- 1. Replay the batch onto the similarity-filtered adjacency.
  // Inserts consult the oracle once (attributes never change, so the verdict
  // is permanent); no-ops are detected against the maintained rows. Each
  // realized change also snapshots its endpoints' pre-repair membership:
  // the dirty-region seeding below needs to know whether the edge was part
  // of the old component structure, and in_core_ here is still pre-peel.
  // The realized changes double as the transaction's undo log — `inserted`
  // records which direction to reverse on rollback.
  struct ChangedEdge {
    VertexId u, v;
    bool u_was_core, v_was_core;
    bool inserted;
  };
  std::vector<VertexId> touched;
  std::vector<ChangedEdge> changed_edges;
  std::vector<VertexId> peeled;
  std::vector<VertexId> promoted;
  std::vector<VertexId> candidates;
  std::vector<VertexId> dirty;
  std::deque<VertexId> peel_queue;

  // Transactional failure path: undo every mutation the batch has made so
  // far — replayed similarity edges (reversed in reverse order, so an
  // insert-then-remove of the same edge within one batch unwinds
  // correctly), core-membership changes, and the per-vertex scratch flags —
  // leaving the workspace, the version, and the updater's internal state
  // bit-identical to the pre-batch state. ws_->components and comp_of_ are
  // not touched until the no-fail commit in phase 7, so they never need
  // undoing.
  auto Fail = [&](Status s) -> Status {
    for (auto it = changed_edges.rbegin(); it != changed_edges.rend(); ++it) {
      if (it->inserted) {
        EraseSorted(sim_adj_[it->u], it->v);
        EraseSorted(sim_adj_[it->v], it->u);
      } else {
        InsertSorted(sim_adj_[it->u], it->v);
        InsertSorted(sim_adj_[it->v], it->u);
      }
    }
    for (VertexId v : peeled) in_core_[v] = 1;
    for (VertexId v : promoted) in_core_[v] = 0;
    for (VertexId v : candidates) candidate_flag_[v] = 0;
    for (VertexId t : touched) touched_flag_[t] = 0;
    for (VertexId v : dirty) {
      dirty_flag_[v] = 0;
      visited_flag_[v] = 0;
    }
    ++cumulative_.rolled_back_batches;
    if (report != nullptr) {
      *report = UpdateReport{};
      report->rolled_back_batches = 1;
    }
    return s;
  };
  // Abort poll, hit in every repair loop: deadline expiry and the named
  // failpoint both route through Fail's rollback.
  auto CheckAbort = [&](const char* site) -> Status {
    if (options.deadline.Expired()) {
      return Status::DeadlineExceeded(
          "edge-update batch exceeded its deadline; batch rolled back");
    }
    return Failpoints::Inject(site);
  };

  auto Touch = [&](VertexId v) {
    if (!touched_flag_[v]) {
      touched_flag_[v] = 1;
      touched.push_back(v);
    }
  };
  for (const EdgeUpdate& upd : updates) {
    if (Status s = CheckAbort("update/replay"); !s.ok()) {
      return Fail(std::move(s));
    }
    ++batch.updates_applied;
    if (upd.kind == EdgeUpdate::Kind::kInsert) {
      if (HasSimilarEdge(upd.u, upd.v)) continue;  // raw duplicate or re-add
      ++batch.pairs_from_oracle;
      if (!oracle_.Similar(upd.u, upd.v)) continue;  // filtered, like prepare
      InsertSorted(sim_adj_[upd.u], upd.v);
      InsertSorted(sim_adj_[upd.v], upd.u);
      ++batch.sim_edges_added;
    } else {
      if (!EraseSorted(sim_adj_[upd.u], upd.v)) continue;  // absent edge
      EraseSorted(sim_adj_[upd.v], upd.u);
      ++batch.sim_edges_removed;
      if (in_core_[upd.u]) peel_queue.push_back(upd.u);
      if (in_core_[upd.v]) peel_queue.push_back(upd.v);
    }
    const bool inserted = upd.kind == EdgeUpdate::Kind::kInsert;
    Touch(upd.u);
    Touch(upd.v);
    changed_edges.push_back({upd.u, upd.v, in_core_[upd.u] != 0,
                             in_core_[upd.v] != 0, inserted});
  }
  if (touched.empty()) {
    // Only no-op updates: the similarity graph — and with it the entire
    // substrate — is unchanged. Still a committed batch, so the version
    // advances.
    ++ws_->version;
    batch.components_reused = ws_->components.size();
    batch.seconds = timer.ElapsedSeconds();
    cumulative_.MergeFrom(batch);
    if (report != nullptr) *report = batch;
    return Status::OK();
  }

  // --- 2. Peel pass: deletions cascade membership loss outward from the
  // removed edges' endpoints. Survivors of this pass form a k-closed set in
  // the updated graph, so they all belong to the new k-core.
  while (!peel_queue.empty()) {
    if (Status s = CheckAbort("update/repair"); !s.ok()) {
      return Fail(std::move(s));
    }
    VertexId v = peel_queue.front();
    peel_queue.pop_front();
    if (!in_core_[v] || CoreDegree(v) >= k) continue;
    in_core_[v] = 0;
    peeled.push_back(v);
    for (VertexId w : sim_adj_[v]) {
      if (in_core_[w]) peel_queue.push_back(w);
    }
  }

  // --- 3. Promotion pass: every vertex the new k-core gains lives in a
  // region reachable from a touched vertex through non-members of full
  // degree >= k (a component of gained vertices none of whose members saw an
  // edge change would have been in the old core already). Collect that
  // candidate frontier, then peel it with the current core anchored: the
  // survivors are exactly the new members.
  {
    std::deque<VertexId> bfs;
    auto Consider = [&](VertexId v) {
      if (!in_core_[v] && !candidate_flag_[v] &&
          sim_adj_[v].size() >= static_cast<size_t>(k)) {
        candidate_flag_[v] = 1;
        candidates.push_back(v);
        bfs.push_back(v);
      }
    };
    for (VertexId t : touched) Consider(t);
    for (VertexId p : peeled) Consider(p);
    while (!bfs.empty()) {
      if (Status s = CheckAbort("update/repair"); !s.ok()) {
        return Fail(std::move(s));
      }
      VertexId v = bfs.front();
      bfs.pop_front();
      for (VertexId w : sim_adj_[v]) Consider(w);
    }
  }
  if (!candidates.empty()) {
    std::deque<VertexId> drop;
    for (VertexId v : candidates) {
      uint32_t d = 0;
      for (VertexId w : sim_adj_[v]) d += in_core_[w] | candidate_flag_[w];
      candidate_degree_[v] = d;
      if (d < k) drop.push_back(v);
    }
    while (!drop.empty()) {
      if (Status s = CheckAbort("update/repair"); !s.ok()) {
        return Fail(std::move(s));
      }
      VertexId v = drop.front();
      drop.pop_front();
      if (!candidate_flag_[v] || candidate_degree_[v] >= k) continue;
      candidate_flag_[v] = 0;
      for (VertexId w : sim_adj_[v]) {
        if (candidate_flag_[w] && --candidate_degree_[w] < k) {
          drop.push_back(w);
        }
      }
    }
    for (VertexId v : candidates) {
      if (candidate_flag_[v]) {
        in_core_[v] = 1;
        promoted.push_back(v);
      }
      candidate_flag_[v] = 0;  // scratch invariant: all-clear on exit
    }
  }
  batch.vertices_peeled = peeled.size();
  batch.vertices_promoted = promoted.size();

  // --- 4. Dirty region: BFS over the new core from every vertex whose
  // within-core neighborhood or membership changed. The closure is a union
  // of complete new components; everything outside it is byte-identical to
  // what a fresh preparation would build. A changed edge dirties a
  // final-core endpoint only when the other endpoint is in the final core
  // (the edge is new component structure) or was in the pre-batch core
  // (it was old structure — the removal that peeled the far endpoint may
  // also have been the surviving side's only link to the peel, so the
  // neighbors-of-peeled seeding below cannot be relied on alone). Edges
  // whose far endpoint is outside both cores touch neither the induced
  // structure graph nor the (vertex-set-determined) dissimilarity rows,
  // and the component is reused verbatim — the common cheap case for
  // churn against a stable core.
  {
    std::deque<VertexId> bfs;
    auto Seed = [&](VertexId v) {
      if (in_core_[v] && !dirty_flag_[v]) {
        dirty_flag_[v] = 1;
        dirty.push_back(v);
        bfs.push_back(v);
      }
    };
    for (const ChangedEdge& e : changed_edges) {
      if (in_core_[e.v] || e.v_was_core) Seed(e.u);
      if (in_core_[e.u] || e.u_was_core) Seed(e.v);
    }
    for (VertexId p : promoted) Seed(p);
    for (VertexId p : peeled) {
      for (VertexId w : sim_adj_[p]) Seed(w);
    }
    while (!bfs.empty()) {
      if (Status s = CheckAbort("update/repair"); !s.ok()) {
        return Fail(std::move(s));
      }
      VertexId v = bfs.front();
      bfs.pop_front();
      for (VertexId w : sim_adj_[v]) Seed(w);
    }
  }
  std::sort(dirty.begin(), dirty.end());

  std::vector<char> comp_dirty(ws_->components.size(), 0);
  bool any_comp_dirty = false;
  auto MarkDirty = [&](VertexId v) {
    if (comp_of_[v] != kNoComponent) {
      comp_dirty[comp_of_[v]] = 1;
      any_comp_dirty = true;
    }
  };
  for (VertexId v : dirty) MarkDirty(v);
  for (VertexId p : peeled) MarkDirty(p);

  // --- 5/6. Rebuild the components of the dirty region, in the discovery
  // order a fresh preparation uses (ascending minimum vertex id; members
  // sorted ascending — ComponentsOfSubset semantics).
  std::vector<ComponentContext> rebuilt;
  {
    std::vector<VertexId> members;
    std::deque<VertexId> bfs;
    // Failure helper for aborts that land after remap_ has been written for
    // the component under rebuild: restore its slots, then roll back.
    auto FailInComponent = [&](Status s) -> Status {
      for (VertexId p : members) remap_[p] = kInvalidVertex;
      return Fail(std::move(s));
    };
    for (VertexId s : dirty) {
      if (visited_flag_[s]) continue;
      if (Status st = CheckAbort("update/rebuild_component"); !st.ok()) {
        return Fail(std::move(st));
      }
      members.clear();
      visited_flag_[s] = 1;
      bfs.push_back(s);
      while (!bfs.empty()) {
        VertexId v = bfs.front();
        bfs.pop_front();
        members.push_back(v);
        for (VertexId w : sim_adj_[v]) {
          if (dirty_flag_[w] && !visited_flag_[w]) {
            visited_flag_[w] = 1;
            bfs.push_back(w);
          }
        }
      }
      std::sort(members.begin(), members.end());

      ComponentContext ctx;
      ctx.to_parent = members;
      const VertexId cn = static_cast<VertexId>(members.size());
      for (VertexId i = 0; i < cn; ++i) remap_[members[i]] = i;
      GraphBuilder builder(cn);
      for (VertexId i = 0; i < cn; ++i) {
        for (VertexId w : sim_adj_[members[i]]) {
          if (w > members[i] && remap_[w] != kInvalidVertex) {
            builder.AddEdge(i, remap_[w]);
          }
        }
      }
      ctx.graph = builder.Build();

      // Origin census: partition this component's vertices (by local id)
      // into groups sharing one old component, plus a singleton group per
      // promoted vertex. Every pair inside an old-component group is served
      // by the cached rows; every pair across groups must consult the
      // oracle — and those are exactly the pairs whose similarity
      // neighborhood changed.
      std::vector<uint32_t> old_comps;
      std::vector<size_t> old_comp_group;  // old_comps[x] -> groups index
      std::vector<std::vector<VertexId>> groups;
      for (VertexId i = 0; i < cn; ++i) {
        uint32_t c = comp_of_[members[i]];
        if (c == kNoComponent) {
          groups.push_back({i});  // promoted: singleton group
          continue;
        }
        // groups also holds promoted singletons, so an old component's
        // group index must be tracked explicitly — positions in old_comps
        // and groups diverge as soon as a promoted vertex interleaves.
        auto it = std::find(old_comps.begin(), old_comps.end(), c);
        if (it == old_comps.end()) {
          old_comps.push_back(c);
          old_comp_group.push_back(groups.size());
          groups.push_back({i});
        } else {
          groups[old_comp_group[it - old_comps.begin()]].push_back(i);
        }
      }
      // dirty fraction = share of this component's n^2 pair space that the
      // cache cannot serve (1 - sum of squared origin-group fractions).
      // Above the threshold the cache saves too little to pay for its
      // bookkeeping: scoped re-prepare — a plain full pair sweep of just
      // this component.
      uint64_t same_origin = 0;
      for (const auto& g : groups) {
        same_origin += static_cast<uint64_t>(g.size()) * g.size();
      }
      const double dirty_fraction =
          cn == 0 ? 0.0
                  : 1.0 - static_cast<double>(same_origin) /
                              (static_cast<double>(cn) *
                               static_cast<double>(cn));
      // >= so max_dirty_fraction = 0 really forces the fallback for every
      // rebuilt component (a pure split has dirty fraction exactly 0).
      const bool fallback = dirty_fraction >= options.max_dirty_fraction &&
                            cn > 0;

      // Freshly evaluated pairs keep the workspace's annotation contract:
      // a scored workspace stores the score and re-classifies against its
      // (serve, cover) interval — the same single evaluation the boolean
      // path runs, so live-updated workspaces keep full-grid servability.
      const bool scored = ws_->scored;
      const double cover = ws_->score_cover;
      const bool is_distance = ws_->is_distance;
      DissimilarityIndex::Builder pairs(cn);
      if (scored) pairs.AnnotateScores();
      auto EvaluatePair = [&](VertexId i, VertexId j) {
        ++batch.pairs_from_oracle;
        if (!scored) {
          if (!oracle_.Similar(members[i], members[j])) pairs.AddPair(i, j);
          return;
        }
        const double s = oracle_.Score(members[i], members[j]);
        if (!oracle_.SimilarAt(s)) {
          pairs.AddScoredPair(i, j, s);
        } else if (!ScoreSimilarUnder(s, cover, is_distance)) {
          pairs.AddReservePair(i, j, s);
        }
      };
      if (fallback) {
        ++batch.fallback_rebuilds;
        if (Status st = CheckAbort("update/fallback_resweep"); !st.ok()) {
          return FailInComponent(std::move(st));
        }
        // Scoped re-prepare of just this component, routed through the
        // configured join strategy — the exact engine PrepareComponents
        // uses, preserving the annotation contract (and bit-identical to
        // the EvaluatePair classification above). The batch deadline flows
        // into the join, whose own polling aborts it mid-sweep.
        SelfJoinOptions join;
        join.strategy = options.join_strategy;
        join.deadline = options.deadline;
        if (scored) join.score_cover = cover;
        std::atomic<bool> join_aborted{false};
        const JoinReport jr =
            SelfJoinPairs(oracle_, members, join, &join_aborted, &pairs);
        batch.pairs_from_oracle += jr.oracle_calls;
        if (join_aborted.load(std::memory_order_relaxed)) {
          return FailInComponent(
              jr.injected_fault
                  ? Status::Internal(
                        "injected fault at failpoint 'join/pairs' during "
                        "the fallback resweep; batch rolled back")
                  : Status::DeadlineExceeded(
                        "edge-update batch exceeded its deadline during "
                        "the fallback resweep; batch rolled back"));
        }
      } else {
        // In-group pairs: restricted from the cached rows, zero oracle
        // calls. The old-local -> new-local map composes through the sorted
        // to_parent arrays; old_local_map_ is persistent scratch (old local
        // ids are < n), written and re-cleared per group so a split's cost
        // stays proportional to the survivors, not the old component.
        std::vector<VertexId> old_rows;
        for (size_t gi = 0; gi < old_comps.size(); ++gi) {
          const ComponentContext& old_ctx = ws_->components[old_comps[gi]];
          // Cached rows of an mmap-served component must pass first-touch
          // validation before they are trusted; a corrupt source rolls the
          // batch back like any other mid-batch failure.
          if (Status st = old_ctx.EnsureValid(); !st.ok()) {
            return FailInComponent(std::move(st));
          }
          old_rows.clear();
          for (VertexId i : groups[old_comp_group[gi]]) {
            auto it = std::lower_bound(old_ctx.to_parent.begin(),
                                       old_ctx.to_parent.end(), members[i]);
            const VertexId old_local =
                static_cast<VertexId>(it - old_ctx.to_parent.begin());
            old_local_map_[old_local] = i;
            old_rows.push_back(old_local);
          }
          batch.pairs_from_cache += old_ctx.dissimilar.AppendRemappedPairs(
              old_rows, old_local_map_, &pairs);
          for (VertexId r : old_rows) old_local_map_[r] = kInvalidVertex;
        }
        // Cross-group pairs: evaluated fresh — O(changed pairs), not
        // O(n^2); same-origin pairs are never even iterated.
        for (size_t gi = 0; gi + 1 < groups.size(); ++gi) {
          if (Status st = CheckAbort("update/rebuild_component"); !st.ok()) {
            return FailInComponent(std::move(st));
          }
          for (size_t gj = gi + 1; gj < groups.size(); ++gj) {
            for (VertexId i : groups[gi]) {
              for (VertexId j : groups[gj]) {
                EvaluatePair(i, j);
              }
            }
          }
        }
      }
      ctx.dissimilar = pairs.Build(ws_->bitset_min_degree);
      batch.rows_rebuilt += cn;
      rebuilt.push_back(std::move(ctx));
      for (VertexId p : members) remap_[p] = kInvalidVertex;
    }
  }
  batch.components_rebuilt = rebuilt.size();

  // Last abort poll: past this point the commit is no-fail (moves, sorts,
  // flag clearing only), so every batch either rolled back completely above
  // or commits completely below.
  if (Status s = CheckAbort("update/before_commit"); !s.ok()) {
    return Fail(std::move(s));
  }

  // --- 7. Reassemble — but only when the component list actually changed:
  // membership churn outside every component leaves the existing list
  // (which already satisfies the order invariant) untouched, so the
  // advertised cheap case costs no re-sort and no comp_of_ rewrite.
  if (rebuilt.empty() && !any_comp_dirty) {
    batch.components_reused = ws_->components.size();
  } else {
    std::vector<ComponentContext> next;
    next.reserve(rebuilt.size() + ws_->components.size());
    for (size_t c = 0; c < ws_->components.size(); ++c) {
      if (!comp_dirty[c]) {
        ++batch.components_reused;
        next.push_back(std::move(ws_->components[c]));
      }
    }
    for (auto& ctx : rebuilt) next.push_back(std::move(ctx));
    // The exact order every preparation path produces; without the
    // max-degree rule, discovery order is ascending minimum parent id.
    if (options.order_by_max_degree) {
      std::sort(next.begin(), next.end(), ComponentOrderBefore);
    } else {
      std::sort(next.begin(), next.end(),
                [](const ComponentContext& a, const ComponentContext& b) {
                  return a.to_parent.front() < b.to_parent.front();
                });
    }
    ws_->components = std::move(next);
    // Incremental comp_of_ refresh: the re-sort renumbers every component,
    // so all present entries are rewritten (O(core), not O(n)); only
    // peeled vertices need explicit invalidation.
    for (VertexId p : peeled) comp_of_[p] = kNoComponent;
    for (size_t c = 0; c < ws_->components.size(); ++c) {
      for (VertexId p : ws_->components[c].to_parent) {
        comp_of_[p] = static_cast<uint32_t>(c);
      }
    }
  }

  // Restore the all-clear scratch invariant (candidate_flag_ was cleared in
  // the promotion pass; remap_ and old_local_map_ per rebuilt component).
  for (VertexId t : touched) touched_flag_[t] = 0;
  for (VertexId v : dirty) {
    dirty_flag_[v] = 0;
    visited_flag_[v] = 0;
  }

  // Commit: the version advances only once the batch is fully applied.
  ++ws_->version;
  batch.seconds = timer.ElapsedSeconds();
  cumulative_.MergeFrom(batch);
  if (report != nullptr) *report = batch;
  return Status::OK();
}

Status ApplyEdgeUpdates(const Graph& g, const SimilarityOracle& oracle,
                        std::span<const EdgeUpdate> updates,
                        const UpdateOptions& options, PreparedWorkspace* ws,
                        UpdateReport* report) {
  WorkspaceUpdater updater(g, oracle, ws);
  return updater.ApplyEdgeUpdates(updates, options, report);
}

EdgeSetMirror::EdgeSetMirror(const Graph& g) : n_(g.num_vertices()) {
  for (VertexId u = 0; u < n_; ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u < v) edges_.insert({u, v});
    }
  }
}

void EdgeSetMirror::Apply(const EdgeUpdate& update) {
  const auto key = std::minmax(update.u, update.v);
  if (update.kind == EdgeUpdate::Kind::kInsert) {
    edges_.insert({key.first, key.second});
  } else {
    edges_.erase({key.first, key.second});
  }
}

void EdgeSetMirror::Apply(std::span<const EdgeUpdate> updates) {
  for (const EdgeUpdate& update : updates) Apply(update);
}

Graph EdgeSetMirror::Build() const {
  GraphBuilder builder(n_);
  for (const auto& [u, v] : edges_) builder.AddEdge(u, v);
  return builder.Build();
}

}  // namespace krcore
