#ifndef KRCORE_CORE_CLIQUE_METHOD_H_
#define KRCORE_CORE_CLIQUE_METHOD_H_

#include "core/krcore_types.h"
#include "core/preprocess_options.h"
#include "graph/graph.h"
#include "similarity/similarity_oracle.h"
#include "util/timer.h"

namespace krcore {

struct CliqueMethodOptions {
  uint32_t k = 3;
  Deadline deadline;
  /// Shared preprocessing knobs; only max_pair_budget applies here. Unlike
  /// the pipeline, the clique method materializes each component's full
  /// similarity *graph* in memory (nothing is streamed), so the legacy 64M
  /// default guard is kept; set 0 explicitly for unlimited.
  PreprocessOptions preprocess{.max_pair_budget = 64ull << 20};
};

/// The improved clique-based baseline of Sec 3 (Clique+): after the shared
/// preprocessing (k-core of the dissimilar-edge-filtered graph, split into
/// components), the *similarity graph* of each component is materialized and
/// its maximal cliques are enumerated; the k-core of the structure subgraph
/// induced by each maximal clique yields candidate (k,r)-cores, which are
/// then maximal-filtered. All three Sec 3 improvements are included. The
/// paper shows this is dominated by BasicEnum (Fig 8); the bench reproduces
/// that comparison.
MaximalCoresResult EnumerateByCliqueMethod(const Graph& g,
                                           const SimilarityOracle& oracle,
                                           const CliqueMethodOptions& options);

}  // namespace krcore

#endif  // KRCORE_CORE_CLIQUE_METHOD_H_
