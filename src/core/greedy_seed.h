#ifndef KRCORE_CORE_GREEDY_SEED_H_
#define KRCORE_CORE_GREEDY_SEED_H_

#include <cstdint>

#include "core/krcore_types.h"
#include "core/pipeline.h"
#include "util/timer.h"

namespace krcore {

/// Greedily peels `comp` down to a valid (k,r)-core: repeatedly discards the
/// candidate with the most dissimilar surviving candidates (lazy max-heap,
/// re-running the Theorem 2 degree cascade after each discard) until the
/// survivors are pairwise similar, then returns the largest connected
/// survivor component mapped to *parent* vertex ids (sorted ascending).
///
/// Returns an empty set when the peel exhausts the component — or when
/// `deadline` expires mid-peel (polled every 64 discards; the seed is an
/// optional accelerator, so giving up keeps FindMaximumCore inside its
/// budget). The result is always a genuine (k,r)-core — connected,
/// min-degree >= k, all pairs similar — so FindMaximumCore can install it
/// as the incumbent before the branch-and-bound starts and bound pruning
/// bites from the first node. Deterministic: ties pick the smallest vertex
/// id.
VertexSet GreedySeedCore(const ComponentContext& comp, uint32_t k,
                         const Deadline& deadline = Deadline());

}  // namespace krcore

#endif  // KRCORE_CORE_GREEDY_SEED_H_
