#ifndef KRCORE_CORE_RESULT_SET_H_
#define KRCORE_CORE_RESULT_SET_H_

#include <unordered_set>
#include <vector>

#include "core/krcore_types.h"

namespace krcore {

/// Collects discovered (k,r)-cores with deduplication (the same core can be
/// reached from several leaves of the set-enumeration tree) and offers the
/// naive maximal filter of Algorithm 1 lines 6-8 for algorithm variants that
/// lack the smart maximal check.
class ResultSet {
 public:
  /// Inserts `core` (sorted vertex ids). Returns true if it was new.
  bool Insert(VertexSet core);

  size_t size() const { return cores_.size(); }
  const std::vector<VertexSet>& cores() const { return cores_; }

  /// Removes every core strictly contained in another (naive maximal
  /// filtering). Quadratic in the number of cores with linear subset tests
  /// on sorted sets.
  void FilterNonMaximal();

  /// Moves the cores out (sorted lexicographically for determinism).
  std::vector<VertexSet> TakeSorted();

 private:
  struct SetHash {
    size_t operator()(const VertexSet& s) const;
  };
  std::vector<VertexSet> cores_;
  std::unordered_set<VertexSet, SetHash> seen_;
};

/// True iff `a` is a subset of `b`; both sorted ascending.
bool IsSubsetOf(const VertexSet& a, const VertexSet& b);

}  // namespace krcore

#endif  // KRCORE_CORE_RESULT_SET_H_
