#include "core/maximal_check.h"

#include <algorithm>

#include "util/logging.h"

namespace krcore {

MaximalCheckSearcher::MaximalCheckSearcher(const ComponentContext& comp)
    : comp_(comp),
      in_core_(comp.size(), 0),
      role_(comp.size(), 0),
      deg_(comp.size(), 0),
      seen_(comp.size(), 0) {}

MaximalVerdict MaximalCheckSearcher::Check(const SearchContext& ctx,
                                           const std::vector<VertexId>& core,
                                           VertexOrder order, double lambda,
                                           const Deadline& deadline,
                                           uint64_t* nodes) {
  for (VertexId u : core) in_core_[u] = 1;

  // Candidates: E vertices similar to every vertex of the core. They are
  // similar to M already (E invariant). When the core covers all of M ∪ C —
  // the overwhelmingly common emission — "similar to the core's C part"
  // is exactly dp_c(v) == 0, an O(1) test; otherwise scan the dissimilar
  // list against the core bitmap.
  bool core_is_all_mc =
      core.size() == static_cast<size_t>(ctx.m_list().size()) +
                         ctx.c_list().size();
  std::vector<VertexId> candidates;
  const VertexList& e_list = ctx.e_list();
  for (VertexId v = e_list.First(); v != kInvalidVertex; v = e_list.Next(v)) {
    bool clash;
    if (core_is_all_mc) {
      clash = ctx.dp_c(v) != 0;
    } else {
      clash = false;
      for (VertexId x : comp_.dissimilar[v]) {
        if (in_core_[x]) {
          clash = true;
          break;
        }
      }
    }
    if (!clash) candidates.push_back(v);
  }

  MaximalVerdict verdict =
      candidates.empty()
          ? MaximalVerdict::kMaximal
          : Search(ctx, core, std::move(candidates), order, lambda, deadline,
                   nodes);
  for (VertexId u : core) in_core_[u] = 0;
  return verdict;
}

void MaximalCheckSearcher::Peel(uint32_t k, std::vector<VertexId>& cand) {
  for (VertexId u : cand) role_[u] = 1;
  worklist_.clear();
  for (VertexId u : cand) {
    uint32_t d = 0;
    for (VertexId v : comp_.graph.neighbors(u)) {
      if (role_[v] == 1 || in_core_[v]) ++d;
    }
    deg_[u] = d;
    if (d < k) worklist_.push_back(u);
  }
  for (size_t head = 0; head < worklist_.size(); ++head) {
    VertexId u = worklist_[head];
    if (role_[u] != 1) continue;
    role_[u] = 0;
    for (VertexId v : comp_.graph.neighbors(u)) {
      if (role_[v] == 1 && deg_[v]-- == k) worklist_.push_back(v);
    }
  }
  size_t out = 0;
  for (VertexId u : cand) {
    if (role_[u] == 1) {
      cand[out++] = u;
      role_[u] = 0;
    }
  }
  cand.resize(out);
}

bool MaximalCheckSearcher::AnyAttached(const std::vector<VertexId>& core,
                                       const std::vector<VertexId>& cand) {
  for (VertexId u : cand) role_[u] = 1;
  ++epoch_;
  stack_.clear();
  for (VertexId u : core) {
    seen_[u] = epoch_;
    stack_.push_back(u);
  }
  bool found = false;
  while (!stack_.empty()) {
    VertexId u = stack_.back();
    stack_.pop_back();
    if (role_[u] == 1) {
      found = true;
      break;
    }
    for (VertexId v : comp_.graph.neighbors(u)) {
      if ((role_[v] == 1 || in_core_[v]) && seen_[v] != epoch_) {
        seen_[v] = epoch_;
        stack_.push_back(v);
      }
    }
  }
  for (VertexId u : cand) role_[u] = 0;
  return found;
}

VertexId MaximalCheckSearcher::ChooseConflicted(
    const std::vector<VertexId>& cand, uint32_t k, VertexOrder order,
    double lambda) {
  (void)k;
  for (VertexId u : cand) role_[u] = 1;
  VertexId best = kInvalidVertex;
  double best_score = -1e300;
  for (VertexId u : cand) {
    uint32_t dis = 0;
    for (VertexId v : comp_.dissimilar[u]) dis += role_[v] == 1;
    if (dis == 0) continue;  // not conflicted
    uint32_t deg = 0;
    for (VertexId v : comp_.graph.neighbors(u)) {
      deg += role_[v] == 1 || in_core_[v];
    }
    double score;
    switch (order) {
      case VertexOrder::kDelta1ThenDelta2:
        score = dis * 1024.0 - deg;
        break;
      case VertexOrder::kLambdaCombo:
        score = lambda * dis -
                static_cast<double>(deg) / std::max<size_t>(1, cand.size());
        break;
      default:  // kDegree (paper's recommendation) and fallbacks
        score = deg;
        break;
    }
    if (score > best_score || (score == best_score && u < best)) {
      best = u;
      best_score = score;
    }
  }
  for (VertexId u : cand) role_[u] = 0;
  return best;
}

MaximalVerdict MaximalCheckSearcher::Search(const SearchContext& ctx,
                                            const std::vector<VertexId>& core,
                                            std::vector<VertexId> cand,
                                            VertexOrder order, double lambda,
                                            const Deadline& deadline,
                                            uint64_t* nodes) {
  if (nodes != nullptr) ++*nodes;
  if (((check_counter_++) & 0xFF) == 0 && deadline.Expired()) {
    return MaximalVerdict::kDeadlineExceeded;
  }
  Peel(ctx.k(), cand);
  if (cand.empty()) return MaximalVerdict::kMaximal;

  VertexId w = ChooseConflicted(cand, ctx.k(), order, lambda);
  if (w == kInvalidVertex) {
    // Conflict-free: the core extends iff any survivor attaches to it.
    return AnyAttached(core, cand) ? MaximalVerdict::kNotMaximal
                                   : MaximalVerdict::kMaximal;
  }

  // Keep-w branch first ("expand" preference, Sec 7.4): drop w's dissimilar
  // candidates.
  {
    for (VertexId v : comp_.dissimilar[w]) role_[v] = 2;
    std::vector<VertexId> keep;
    keep.reserve(cand.size());
    for (VertexId u : cand) {
      if (role_[u] != 2) keep.push_back(u);
    }
    for (VertexId v : comp_.dissimilar[w]) role_[v] = 0;
    MaximalVerdict verdict =
        Search(ctx, core, std::move(keep), order, lambda, deadline, nodes);
    if (verdict != MaximalVerdict::kMaximal) return verdict;
  }
  // Drop-w branch.
  std::vector<VertexId> rest;
  rest.reserve(cand.size() - 1);
  for (VertexId u : cand) {
    if (u != w) rest.push_back(u);
  }
  return Search(ctx, core, std::move(rest), order, lambda, deadline, nodes);
}

MaximalVerdict CheckMaximal(const SearchContext& ctx,
                            const std::vector<VertexId>& core,
                            VertexOrder order, double lambda,
                            const Deadline& deadline, uint64_t* nodes) {
  MaximalCheckSearcher searcher(ctx.component());
  return searcher.Check(ctx, core, order, lambda, deadline, nodes);
}

}  // namespace krcore
