#ifndef KRCORE_CORE_DISSIMILARITY_INDEX_H_
#define KRCORE_CORE_DISSIMILARITY_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace krcore {

/// Flat storage for per-component dissimilarity: for every local vertex u,
/// the sorted list of local vertices v with sim(u, v) violating r. This is
/// the complement of the component's similarity graph and the engine's
/// single hottest data structure — every Theorem 3 pruning loop, dp counter
/// update, SF(C) maintenance step and conflict branch walks these rows.
///
/// Layout:
///  - CSR core: one offsets array (n+1) plus one contiguous id array, so
///    row iteration is a pointer-range scan with no per-row heap hops and
///    membership probes are a binary search over a cache-contiguous range.
///  - Hybrid bitsets: rows that are both absolutely large (>= the builder's
///    `bitset_min_degree`) and dense relative to the component (degree * 64
///    >= n; a bitset row is n/8 bytes vs 4*degree CSR bytes, so this caps
///    the bitset at ~2x the row's CSR bytes) additionally get a packed
///    bitmap, making Dissimilar(u, v) O(1) on exactly the hot vertices
///    where a binary search over a huge row would hurt.
///  - Score annotation (optional): a parallel score array storing each
///    pair's raw metric value, and a two-segment row split. The *active*
///    segment holds the pairs dissimilar at the index's serving threshold —
///    exactly what an unannotated index stores — and every mining-facing
///    accessor (operator[], degree, Dissimilar, the bitsets, num_pairs)
///    sees only it, so the search hot path is bit-for-bit identical with or
///    without annotation. The *reserve* segment holds pairs that are
///    similar at the serving threshold but dissimilar at some stricter
///    *cover* threshold; only the derivation machinery reads it, to answer
///    any threshold between serve and cover as a pure score filter with
///    zero oracle calls.
///
///    Both segments keep ascending id order (not score order): the hot path
///    needs O(log d) id membership on bitset-less rows, and an r-filter has
///    to remap ids while copying anyway, so score-ordering a row would cost
///    the membership probe and buy nothing the linear filter pass does not
///    already get. Scores are stored at full double width: the filter must
///    reproduce the oracle's threshold verdict bit for bit — a float-
///    narrowed score can flip a pair that sits within half an ULP of a cell
///    threshold, silently breaking the derived == cold invariant the whole
///    reuse layer is contracted on.
///
/// Storage is owned-or-borrowed, like Graph: Builder::Build produces an
/// owning index (vectors), while BorrowedView wraps externally-owned CSR
/// arrays — the spans an mmapped snapshot hands out, whose lifetime the
/// holder of the mapping (PreparedWorkspace::backing) carries. The hybrid
/// bitsets live in a shared BitsetArena behind a shared_ptr so that copies
/// of a lazily-validated borrowed index all observe the arena the one
/// first-touch validation pass fills in.
///
/// Instances are immutable once built; all reads are const and thread-safe.
class DissimilarityIndex {
 public:
  /// Default absolute degree floor below which a row never gets a bitset.
  static constexpr uint32_t kDefaultBitsetMinDegree = 64;

  /// The hybrid-bitset acceleration structure: one packed bitmap row per
  /// hot vertex, shared (behind shared_ptr) by every copy of an index.
  /// Built deterministically from the active CSR rows by ComputeBitsets —
  /// either at Build() time (owned indexes) or during a borrowed index's
  /// first-touch validation.
  struct BitsetArena {
    std::vector<uint32_t> slot;  // n entries; kNoBitset for cold rows
    std::vector<uint64_t> bits;  // rows * words_per_row packed words
    VertexId words_per_row = 0;
    VertexId rows = 0;

    uint64_t MemoryBytes() const {
      return slot.size() * sizeof(uint32_t) + bits.size() * sizeof(uint64_t);
    }
  };

  DissimilarityIndex() = default;

  DissimilarityIndex(const DissimilarityIndex& o) { *this = o; }
  DissimilarityIndex& operator=(const DissimilarityIndex& o);
  DissimilarityIndex(DissimilarityIndex&& o) noexcept {
    *this = std::move(o);
  }
  DissimilarityIndex& operator=(DissimilarityIndex&& o) noexcept;

  /// Borrows externally-owned CSR arrays without copying or validating (the
  /// snapshot layer validates on first touch). `arena` may start empty and
  /// be filled in place by that validation pass — the call_once guarding it
  /// gives every copy a happens-before on the fill.
  static DissimilarityIndex BorrowedView(
      VertexId n, std::span<const uint64_t> offsets,
      std::span<const uint64_t> active_end, std::span<const VertexId> ids,
      std::span<const double> scores, uint64_t num_pairs,
      uint64_t num_reserve_pairs, bool scored,
      std::shared_ptr<const BitsetArena> arena);

  /// Builds the hybrid-bitset arena for `index`'s active rows: a row is hot
  /// when its active degree is >= bitset_min_degree and degree * 64 >= n.
  /// Deterministic in the index contents, so a snapshot round-trip rebuilds
  /// byte-identical bitsets.
  static BitsetArena ComputeBitsets(const DissimilarityIndex& index,
                                    uint32_t bitset_min_degree);

  VertexId num_vertices() const { return n_; }
  /// Number of unordered dissimilar pairs at the serving threshold (DP of
  /// Sec 7.1). Reserve pairs are not counted — they are not dissimilar at
  /// the threshold this index serves.
  uint64_t num_pairs() const { return num_pairs_; }
  bool empty() const { return num_pairs_ == 0; }

  /// True when rows carry the parallel score annotation (and possibly
  /// reserve segments) a threshold-restriction needs.
  bool has_scores() const { return !scores_view_.empty() || annotated_empty_; }
  /// Number of unordered reserve pairs (similar at the serving threshold,
  /// dissimilar at the builder's cover threshold).
  uint64_t num_reserve_pairs() const { return num_reserve_pairs_; }

  /// Dissimilar degree at the serving threshold (active entries only).
  uint32_t degree(VertexId u) const {
    KRCORE_DCHECK(u < n_);
    return static_cast<uint32_t>(active_end_view_[u] - offsets_view_[u]);
  }

  /// Sorted dissimilar row of u (active segment only — what mining sees).
  std::span<const VertexId> operator[](VertexId u) const {
    KRCORE_DCHECK(u < n_);
    return {ids_view_.data() + offsets_view_[u],
            ids_view_.data() + active_end_view_[u]};
  }
  std::span<const VertexId> row(VertexId u) const { return (*this)[u]; }

  /// Scores parallel to row(u). Empty spans when !has_scores().
  std::span<const double> row_scores(VertexId u) const {
    KRCORE_DCHECK(u < n_);
    if (scores_view_.empty()) return {};
    return {scores_view_.data() + offsets_view_[u],
            scores_view_.data() + active_end_view_[u]};
  }

  /// Sorted reserve row of u: partners similar at the serving threshold but
  /// dissimilar at the cover threshold, with scores parallel.
  std::span<const VertexId> reserve_row(VertexId u) const {
    KRCORE_DCHECK(u < n_);
    return {ids_view_.data() + active_end_view_[u],
            ids_view_.data() + offsets_view_[u + 1]};
  }
  std::span<const double> reserve_scores(VertexId u) const {
    KRCORE_DCHECK(u < n_);
    if (scores_view_.empty()) return {};
    return {scores_view_.data() + active_end_view_[u],
            scores_view_.data() + offsets_view_[u + 1]};
  }

  /// True iff {u, v} is a dissimilar pair at the serving threshold. O(1)
  /// when either endpoint owns a bitset, O(log min(deg(u), deg(v)))
  /// otherwise. Reserve pairs answer false — they are similar at serve.
  bool Dissimilar(VertexId u, VertexId v) const;

  /// Number of rows backed by a bitset.
  VertexId bitset_rows() const { return arena_ ? arena_->rows : 0; }

  /// Bytes held by the CSR arrays, the score annotation and the bitset
  /// arena (excludes the object header; used for the PreprocessReport
  /// memory accounting). Borrowed views count their mapped bytes.
  uint64_t MemoryBytes() const;

  /// Raw CSR arrays (the snapshot writer's zero-transform serialization).
  std::span<const uint64_t> offsets_array() const { return offsets_view_; }
  std::span<const uint64_t> active_end_array() const {
    return active_end_view_;
  }
  std::span<const VertexId> ids_array() const { return ids_view_; }
  std::span<const double> scores_array() const { return scores_view_; }
  bool borrowed() const { return borrowed_; }

  /// Accumulates pairs (both directions are derived from one AddPair call)
  /// and freezes them into an index. Designed for streaming producers: the
  /// buffer holds 8 bytes per pair (plus 9 more when score-annotated) plus
  /// 8 bytes per vertex while accumulating; during Build() the buffer and
  /// the CSR arrays briefly coexist.
  ///
  /// A builder is either unannotated (AddPair only) or score-annotated
  /// (AddScoredPair / AddReservePair only); mixing the two is a programming
  /// error.
  class Builder {
   public:
    explicit Builder(VertexId num_vertices);

    /// Records the unordered dissimilar pair {a, b}; a != b, both < n.
    /// Each pair must be added at most once (across both segments).
    void AddPair(VertexId a, VertexId b);

    /// Switches the builder to score-annotated mode without adding a pair:
    /// a component with zero stored pairs must still build an index that
    /// advertises has_scores(), or an empty component would lose its
    /// threshold-restriction capability. Implied by the scored adds.
    void AnnotateScores() {
      KRCORE_DCHECK(!any_unscored_);
      scored_ = true;
    }

    /// Score-annotated forms: an active pair (dissimilar at the serving
    /// threshold) or a reserve pair (similar at serve, dissimilar at the
    /// cover threshold), each carrying its raw metric score.
    void AddScoredPair(VertexId a, VertexId b, double score);
    void AddReservePair(VertexId a, VertexId b, double score);

    uint64_t num_pairs() const { return pairs_.size(); }
    /// Transient bytes currently held by the builder.
    uint64_t MemoryBytes() const;

    /// Freezes into an immutable index. The builder is consumed (its pair
    /// buffer is released).
    DissimilarityIndex Build(
        uint32_t bitset_min_degree = kDefaultBitsetMinDegree);

   private:
    void Record(VertexId a, VertexId b, bool reserve);

    VertexId n_;
    bool scored_ = false;
    bool any_unscored_ = false;
    std::vector<uint32_t> active_counts_;   // per-row active degree
    std::vector<uint32_t> reserve_counts_;  // per-row reserve degree
    std::vector<uint64_t> pairs_;           // packed (min << 32 | max)
    std::vector<double> scores_;            // parallel to pairs_ when scored
    std::vector<uint8_t> reserve_;          // parallel segment flag
  };

  /// Row maintenance primitive shared by workspace derivation and the
  /// incremental edge-update engine: streams every stored pair {u, v} whose
  /// endpoints both survive a re-keying (new_id[x] != kInvalidVertex) into
  /// `builder` under the new ids, and returns how many pairs were appended.
  /// `rows` lists the surviving source ids — every pair is emitted from its
  /// smaller endpoint's row, so `rows` must contain ALL survivors, and only
  /// those rows are scanned (a split into many sub-components stays
  /// proportional to the survivors, not to this index's size). Invalidated
  /// rows (new_id[x] == kInvalidVertex) are dropped wholesale — surviving
  /// partners' rows lose exactly the entries pointing at them — and the
  /// caller refills genuinely new rows with fresh AddPair calls before
  /// Build(). new_id.size() must be >= num_vertices().
  ///
  /// Score annotation, when present, rides through verbatim: active pairs
  /// stay active, reserve pairs stay reserve, scores preserved — the
  /// restriction serves the same (serve, cover) pair of thresholds.
  uint64_t AppendRemappedPairs(std::span<const VertexId> rows,
                               std::span<const VertexId> new_id,
                               Builder* builder) const;

  /// Threshold-restricting variant for a score-annotated index: re-keys the
  /// surviving pairs like AppendRemappedPairs but re-classifies them for a
  /// *stricter* serving threshold `new_serve` (same metric direction as the
  /// index was built under). Active pairs stay active with no score test —
  /// dissimilarity is monotone under tightening. Reserve pairs are score-
  /// tested: dissimilar at new_serve goes active, the rest stays reserve
  /// (the cover threshold is unchanged). `score_tests`, when non-null, is
  /// incremented once per reserve pair consulted — the score_filtered_pairs
  /// accounting of the derivation layer. Returns the pairs appended.
  /// Requires has_scores().
  uint64_t AppendRestrictedPairs(std::span<const VertexId> rows,
                                 std::span<const VertexId> new_id,
                                 double new_serve, bool is_distance,
                                 Builder* builder,
                                 uint64_t* score_tests) const;

  /// Score of the stored pair {u, v} searched in u's full row (both
  /// segments); returns false when the pair is not stored or the index is
  /// unannotated. A probe utility for annotation consumers and tests —
  /// the bulk derivation paths iterate the segments directly instead.
  bool LookupScore(VertexId u, VertexId v, double* score) const;

  static constexpr uint32_t kNoBitset = static_cast<uint32_t>(-1);

 private:
  bool TestBit(uint32_t slot, VertexId v) const {
    return (arena_->bits[static_cast<uint64_t>(slot) * arena_->words_per_row +
                         (v >> 6)] >>
            (v & 63)) &
           1;
  }

  void RebindOwned() {
    offsets_view_ = offsets_;
    active_end_view_ = active_end_;
    ids_view_ = ids_;
    scores_view_ = scores_;
  }

  VertexId n_ = 0;
  uint64_t num_pairs_ = 0;
  uint64_t num_reserve_pairs_ = 0;
  /// Distinguishes "annotated but zero pairs stored" from "unannotated":
  /// an empty scored index still advertises has_scores() so derivation
  /// accepts it.
  bool annotated_empty_ = false;
  bool borrowed_ = false;

  // Owned backing (empty for borrowed views).
  std::vector<uint64_t> offsets_;     // n+1, full rows (active + reserve)
  std::vector<uint64_t> active_end_;  // n, end of each active segment
  std::vector<VertexId> ids_;         // contiguous rows, segments sorted
  std::vector<double> scores_;        // parallel to ids_ when annotated

  // The uniform read surface: over the owned vectors, or over mapped bytes.
  std::span<const uint64_t> offsets_view_;
  std::span<const uint64_t> active_end_view_;
  std::span<const VertexId> ids_view_;
  std::span<const double> scores_view_;

  // Hybrid part, shared by every copy of this index. Null means no bitsets
  // (or a borrowed view whose lazy validation has not filled the arena yet
  // — mining never probes before EnsureValid).
  std::shared_ptr<const BitsetArena> arena_;
};

}  // namespace krcore

#endif  // KRCORE_CORE_DISSIMILARITY_INDEX_H_
