#ifndef KRCORE_CORE_DISSIMILARITY_INDEX_H_
#define KRCORE_CORE_DISSIMILARITY_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace krcore {

/// Flat storage for per-component dissimilarity: for every local vertex u,
/// the sorted list of local vertices v with sim(u, v) violating r. This is
/// the complement of the component's similarity graph and the engine's
/// single hottest data structure — every Theorem 3 pruning loop, dp counter
/// update, SF(C) maintenance step and conflict branch walks these rows.
///
/// Layout:
///  - CSR core: one offsets array (n+1) plus one contiguous id array, so
///    row iteration is a pointer-range scan with no per-row heap hops and
///    membership probes are a binary search over a cache-contiguous range.
///  - Hybrid bitsets: rows that are both absolutely large (>= the builder's
///    `bitset_min_degree`) and dense relative to the component (degree * 64
///    >= n; a bitset row is n/8 bytes vs 4*degree CSR bytes, so this caps
///    the bitset at ~2x the row's CSR bytes) additionally get a packed
///    bitmap, making Dissimilar(u, v) O(1) on exactly the hot vertices
///    where a binary search over a huge row would hurt.
///
/// Instances are immutable once built; all reads are const and thread-safe.
class DissimilarityIndex {
 public:
  /// Default absolute degree floor below which a row never gets a bitset.
  static constexpr uint32_t kDefaultBitsetMinDegree = 64;

  DissimilarityIndex() = default;

  VertexId num_vertices() const { return n_; }
  /// Number of unordered dissimilar pairs (DP of Sec 7.1).
  uint64_t num_pairs() const { return num_pairs_; }
  bool empty() const { return num_pairs_ == 0; }

  uint32_t degree(VertexId u) const {
    KRCORE_DCHECK(u < n_);
    return static_cast<uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// Sorted dissimilar row of u.
  std::span<const VertexId> operator[](VertexId u) const {
    KRCORE_DCHECK(u < n_);
    return {ids_.data() + offsets_[u], ids_.data() + offsets_[u + 1]};
  }
  std::span<const VertexId> row(VertexId u) const { return (*this)[u]; }

  /// True iff {u, v} is a dissimilar pair. O(1) when either endpoint owns a
  /// bitset, O(log min(deg(u), deg(v))) otherwise.
  bool Dissimilar(VertexId u, VertexId v) const;

  /// Number of rows backed by a bitset.
  VertexId bitset_rows() const { return bitset_rows_; }

  /// Bytes held by the CSR arrays plus the bitset arena (excludes the
  /// object header; used for the PreprocessReport memory accounting).
  uint64_t MemoryBytes() const;

  /// Accumulates pairs (both directions are derived from one AddPair call)
  /// and freezes them into an index. Designed for streaming producers: the
  /// buffer holds 8 bytes per pair plus 4 bytes per vertex while
  /// accumulating; during Build() the buffer and the CSR arrays (another
  /// ~8 bytes per pair) briefly coexist.
  class Builder {
   public:
    explicit Builder(VertexId num_vertices);

    /// Records the unordered dissimilar pair {a, b}; a != b, both < n.
    /// Each pair must be added at most once.
    void AddPair(VertexId a, VertexId b);

    uint64_t num_pairs() const { return pairs_.size(); }
    /// Transient bytes currently held by the builder.
    uint64_t MemoryBytes() const;

    /// Freezes into an immutable index. The builder is consumed (its pair
    /// buffer is released).
    DissimilarityIndex Build(
        uint32_t bitset_min_degree = kDefaultBitsetMinDegree);

   private:
    VertexId n_;
    std::vector<uint32_t> counts_;  // per-row degree accumulated by AddPair
    std::vector<uint64_t> pairs_;   // packed (min << 32 | max)
  };

  /// Row maintenance primitive shared by workspace derivation and the
  /// incremental edge-update engine: streams every stored pair {u, v} whose
  /// endpoints both survive a re-keying (new_id[x] != kInvalidVertex) into
  /// `builder` under the new ids, and returns how many pairs were appended.
  /// `rows` lists the surviving source ids — every pair is emitted from its
  /// smaller endpoint's row, so `rows` must contain ALL survivors, and only
  /// those rows are scanned (a split into many sub-components stays
  /// proportional to the survivors, not to this index's size). Invalidated
  /// rows (new_id[x] == kInvalidVertex) are dropped wholesale — surviving
  /// partners' rows lose exactly the entries pointing at them — and the
  /// caller refills genuinely new rows with fresh AddPair calls before
  /// Build(). new_id.size() must be >= num_vertices().
  uint64_t AppendRemappedPairs(std::span<const VertexId> rows,
                               std::span<const VertexId> new_id,
                               Builder* builder) const;

 private:
  static constexpr uint32_t kNoBitset = static_cast<uint32_t>(-1);

  bool TestBit(uint32_t slot, VertexId v) const {
    return (bits_[static_cast<uint64_t>(slot) * words_per_row_ + (v >> 6)] >>
            (v & 63)) &
           1;
  }

  VertexId n_ = 0;
  uint64_t num_pairs_ = 0;
  std::vector<uint64_t> offsets_;  // n+1
  std::vector<VertexId> ids_;      // contiguous rows, each sorted

  // Hybrid part: slot index per vertex (kNoBitset for cold rows) into a
  // single arena of bitset_rows_ * words_per_row_ words.
  std::vector<uint32_t> bitset_slot_;
  std::vector<uint64_t> bits_;
  VertexId words_per_row_ = 0;
  VertexId bitset_rows_ = 0;
};

}  // namespace krcore

#endif  // KRCORE_CORE_DISSIMILARITY_INDEX_H_
