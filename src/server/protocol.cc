#include "server/protocol.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <unordered_set>

namespace krcore {
namespace {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

Status BadRequest(const std::string& what) {
  return Status::InvalidArgument("bad request: " + what);
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseDoubleStrict(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || *end != '\0' || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

}  // namespace

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kEnumerate:
      return "enum";
    case QueryKind::kMaximum:
      return "max";
    case QueryKind::kDerive:
      return "derive";
  }
  return "unknown";
}

Status ParseRequestLine(const std::string& line, QueryRequest* out,
                        std::string* id_out) {
  *out = QueryRequest{};
  id_out->clear();
  // Pre-pass: latch the id wherever it sits on the line, so an error on an
  // earlier token still produces a correlatable error response.
  {
    std::istringstream scan(line);
    std::string token;
    while (scan >> token) {
      if (token[0] == '#') break;
      if (token.rfind("id=", 0) == 0) {
        *id_out = token.substr(3);
        break;
      }
    }
  }
  std::istringstream in(line);
  std::string token;
  std::unordered_set<std::string> seen;
  bool have_op = false, have_k = false;
  while (in >> token) {
    if (token[0] == '#') break;  // trailing comment
    size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      return BadRequest("expected key=value, got '" + token + "'");
    }
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (!seen.insert(key).second) {
      return BadRequest("duplicate key '" + key + "'");
    }
    if (key == "id") {
      out->id = value;
      *id_out = value;
    } else if (key == "ws") {
      if (value.empty()) return BadRequest("ws must not be empty");
      out->workspace = value;
    } else if (key == "op") {
      have_op = true;
      if (value == "enum") {
        out->kind = QueryKind::kEnumerate;
      } else if (value == "max") {
        out->kind = QueryKind::kMaximum;
      } else if (value == "derive") {
        out->kind = QueryKind::kDerive;
      } else {
        return BadRequest("unknown op '" + value +
                          "' (want enum, max or derive)");
      }
    } else if (key == "k") {
      uint64_t k = 0;
      if (!ParseU64(value, &k) || k == 0 || k > 0xffffffffull) {
        return BadRequest("k must be a positive 32-bit integer, got '" +
                          value + "'");
      }
      out->k = static_cast<uint32_t>(k);
      have_k = true;
    } else if (key == "r") {
      if (!ParseDoubleStrict(value, &out->r)) {
        return BadRequest("r must be a finite number, got '" + value + "'");
      }
    } else if (key == "timeout") {
      if (!ParseDoubleStrict(value, &out->timeout_seconds) ||
          out->timeout_seconds < 0.0) {
        return BadRequest("timeout must be a non-negative number of "
                          "seconds, got '" + value + "'");
      }
    } else if (key == "limit") {
      if (!ParseU64(value, &out->limit)) {
        return BadRequest("limit must be a non-negative integer, got '" +
                          value + "'");
      }
    } else {
      return BadRequest("unknown key '" + key + "'");
    }
  }
  if (seen.empty()) {
    return Status::NotFound("empty request line");
  }
  if (!have_op) return BadRequest("missing op=enum|max|derive");
  if (!have_k) return BadRequest("missing k=<positive integer>");
  return Status::OK();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  // %.17g round-trips every double; try the shorter %.15g first and keep it
  // when it parses back exactly (keeps 0.25 as "0.25", not 17 digits).
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

std::string SerializeResponse(const QueryResponse& response) {
  std::string out = "{\"id\":\"" + JsonEscape(response.id) + "\"";
  out += ",\"status\":\"";
  out += StatusCodeName(response.status.code());
  out += "\"";
  if (!response.status.ok()) {
    out += ",\"error\":\"" + JsonEscape(response.status.message()) + "\"";
  }
  out += ",\"op\":\"";
  out += QueryKindName(response.kind);
  out += "\",\"k\":" + std::to_string(response.k);
  out += ",\"r\":" + JsonDouble(response.r);
  if (response.status.ok() || response.status.IsDeadlineExceeded()) {
    out += ",\"version\":" + std::to_string(response.workspace_version);
    if (response.live) {
      out += ",\"epoch\":" + std::to_string(response.epoch);
      out += ",\"staleness_batches\":" +
             std::to_string(response.staleness_batches);
      out += ",\"staleness_seconds\":" +
             JsonDouble(response.staleness_seconds);
    }
    out += ",\"count\":" + std::to_string(response.count);
    if (response.kind == QueryKind::kDerive) {
      out += ",\"components\":" + std::to_string(response.num_components);
    } else {
      out += ",\"cores\":[";
      for (size_t i = 0; i < response.cores.size(); ++i) {
        if (i) out += ',';
        out += '[';
        for (size_t j = 0; j < response.cores[i].size(); ++j) {
          if (j) out += ',';
          out += std::to_string(response.cores[i][j]);
        }
        out += ']';
      }
      out += ']';
    }
    out += ",\"search_nodes\":" + std::to_string(response.stats.search_nodes);
  }
  out += ",\"coalesced\":";
  out += response.coalesced ? "true" : "false";
  out += ",\"wait_seconds\":" + JsonDouble(response.wait_seconds);
  out += ",\"derive_seconds\":" + JsonDouble(response.derive_seconds);
  out += ",\"mine_seconds\":" + JsonDouble(response.mine_seconds);
  out += "}";
  return out;
}

}  // namespace krcore
