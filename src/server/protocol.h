#ifndef KRCORE_SERVER_PROTOCOL_H_
#define KRCORE_SERVER_PROTOCOL_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/krcore_types.h"
#include "util/status.h"
#include "util/timer.h"

namespace krcore {

/// The wire protocol of the query server, chosen for testability over
/// transport sophistication: requests are single lines of space-separated
/// `key=value` tokens, responses are single-line JSON objects. Both
/// directions are newline-delimited, so the server runs over any byte
/// stream — stdin/stdout, a pipe, a socket fd — and an in-process client is
/// just a pair of stringstreams (docs/SERVER.md specifies the grammar and a
/// worked session).

/// What a query asks the engine to do with its (k, r) cell.
enum class QueryKind : uint8_t {
  kEnumerate,  // all maximal (k,r)-cores
  kMaximum,    // one maximum (k,r)-core
  kDerive,     // derive the cell's substrate only: component/vertex counts,
               // no mining — the cheap "how big is this cell" probe
};

const char* QueryKindName(QueryKind kind);

/// One parsed client request. `k` is required; `r` defaults to the target
/// workspace's serving threshold when NaN (the parser's "not given" value).
struct QueryRequest {
  /// Client-chosen token echoed back verbatim in the response, so clients
  /// that pipeline requests can match responses out of order.
  std::string id;
  /// Registry name of the workspace to serve from.
  std::string workspace = "default";
  QueryKind kind = QueryKind::kEnumerate;
  uint32_t k = 0;
  /// NaN = the workspace's own serving threshold (filled at admission).
  double r = std::numeric_limits<double>::quiet_NaN();
  /// Per-request wall-clock budget in seconds; <= 0 = the server default.
  double timeout_seconds = 0.0;
  /// Enumerate only: cap on the cores included in the response (0 = all).
  /// The search itself is not truncated — `count` still reports the full
  /// total — this only bounds response size.
  uint64_t limit = 0;

  bool has_r() const { return !std::isnan(r); }
};

/// One server response: the request's id, a Status, the result payload, and
/// the per-stage timing the request observed. Serialized as one JSON line.
struct QueryResponse {
  std::string id;
  Status status;
  QueryKind kind = QueryKind::kEnumerate;
  /// The resolved cell (r filled in even when the request omitted it) and
  /// the graph version of the substrate that served it.
  uint32_t k = 0;
  double r = 0.0;
  uint64_t workspace_version = 0;
  /// Live-ingestion serving metadata, meaningful only when `live` is true
  /// (the workspace is in live-updating registration): the published epoch
  /// the response's substrate came from, and the published-version lag
  /// observed at admission. Serialized only for live workspaces, so frozen
  /// responses are byte-identical to pre-ingestion builds.
  bool live = false;
  uint64_t epoch = 0;
  uint64_t staleness_batches = 0;
  double staleness_seconds = 0.0;
  /// kEnumerate: all maximal cores (truncated to `limit`); kMaximum: one
  /// entry holding the maximum core (absent when none exists).
  std::vector<VertexSet> cores;
  /// kEnumerate: total maximal cores found (>= cores.size() when a limit
  /// truncated the payload); kMaximum: the maximum core's size; kDerive:
  /// the derived cell's vertex count.
  uint64_t count = 0;
  /// kDerive: components in the derived cell's substrate.
  uint64_t num_components = 0;
  /// True when this response was served by a coalesced execution another
  /// request led (the derivation + mining ran once and fanned out).
  bool coalesced = false;
  /// Seconds from admission to execution start (queue wait), and the
  /// derive/mine stage service times of the execution that produced the
  /// payload (coalesced followers see the leader's service times).
  double wait_seconds = 0.0;
  double derive_seconds = 0.0;
  double mine_seconds = 0.0;
  /// Mining counters of the execution (search_nodes etc.), surfaced so
  /// clients can account server-side work per query.
  MiningStats stats;
};

/// Parses one request line: space-separated `key=value` tokens in any
/// order. Keys: `op` (enum|max|derive), `k`, and optionally `id`, `ws`,
/// `r`, `timeout`, `limit`. Unknown keys, duplicate keys, malformed values
/// and a missing/invalid `op` or `k` are InvalidArgument — with the parsed
/// `id` (when one was readable) preserved in *id_out so the error response
/// still correlates. Empty lines and `#` comments return NotFound, meaning
/// "nothing to execute" (transports skip them).
Status ParseRequestLine(const std::string& line, QueryRequest* out,
                        std::string* id_out);

/// Renders `response` as one JSON object on a single line (no trailing
/// newline). Status is rendered as {"status": "<CODE>", "error": "<msg>"}
/// with `error` only present on failure; cores as arrays of vertex ids.
std::string SerializeResponse(const QueryResponse& response);

/// Escapes `s` for inclusion in a JSON string literal (quotes, backslashes,
/// control characters).
std::string JsonEscape(const std::string& s);

/// Formats a double for JSON round-tripping (shortest form preserving the
/// exact value; NaN/Inf — which JSON lacks — render as null).
std::string JsonDouble(double v);

}  // namespace krcore

#endif  // KRCORE_SERVER_PROTOCOL_H_
