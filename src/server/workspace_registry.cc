#include "server/workspace_registry.h"

#include <utility>

#include "snapshot/workspace_snapshot.h"
#include "util/timer.h"

namespace krcore {

Status WorkspaceRegistry::AddLocked(const std::string& name, Registered reg) {
  if (name.empty()) {
    return Status::InvalidArgument("workspace name must not be empty");
  }
  const PreparedWorkspace& probe =
      reg.live ? *reg.live->Current().workspace : *reg.ws;
  if (probe.k == 0) {
    return Status::InvalidArgument("workspace '" + name +
                                   "' is empty (k == 0); register only "
                                   "PrepareWorkspace/snapshot output");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.emplace(name, std::move(reg));
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("workspace '" + name +
                                   "' is already registered");
  }
  return Status::OK();
}

Status WorkspaceRegistry::Add(const std::string& name, PreparedWorkspace ws) {
  Registered reg;
  reg.ws = std::make_shared<const PreparedWorkspace>(std::move(ws));
  return AddLocked(name, std::move(reg));
}

Status WorkspaceRegistry::Replace(const std::string& name,
                                  PreparedWorkspace ws) {
  if (name.empty()) {
    return Status::InvalidArgument("workspace name must not be empty");
  }
  if (ws.k == 0) {
    return Status::InvalidArgument("workspace '" + name +
                                   "' is empty (k == 0)");
  }
  Registered reg;
  reg.ws = std::make_shared<const PreparedWorkspace>(std::move(ws));
  std::lock_guard<std::mutex> lock(mu_);
  entries_[name] = std::move(reg);
  return Status::OK();
}

Status WorkspaceRegistry::AddFromSnapshot(const std::string& name,
                                          const std::string& path,
                                          SnapshotLoadMode mode) {
  PreparedWorkspace ws;
  SnapshotLoadOptions options;
  options.lazy = mode == SnapshotLoadMode::kLazy;
  SnapshotLoadInfo info;
  Timer timer;
  Status s = LoadWorkspaceSnapshot(path, options, &ws, &info);
  if (!s.ok()) return s;
  Registered reg;
  reg.ws = std::make_shared<const PreparedWorkspace>(std::move(ws));
  reg.snapshot_version = info.format_version;
  reg.load_seconds = timer.ElapsedSeconds();
  reg.lazy_loaded = info.lazy;
  reg.mapped = info.mapped;
  return AddLocked(name, std::move(reg));
}

Status WorkspaceRegistry::AddLive(const std::string& name,
                                  std::shared_ptr<LiveWorkspace> live) {
  if (!live) {
    return Status::InvalidArgument("AddLive needs a non-null LiveWorkspace");
  }
  Registered reg;
  reg.live = std::move(live);
  return AddLocked(name, std::move(reg));
}

Status WorkspaceRegistry::Alias(const std::string& alias,
                                const std::string& existing) {
  if (alias.empty()) {
    return Status::InvalidArgument("workspace name must not be empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(existing);
  if (it == entries_.end()) {
    return Status::NotFound("workspace '" + existing + "' is not registered");
  }
  auto [alias_it, inserted] = entries_.emplace(alias, it->second);
  (void)alias_it;
  if (!inserted) {
    return Status::InvalidArgument("workspace '" + alias +
                                   "' is already registered");
  }
  return Status::OK();
}

Status WorkspaceRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.erase(name) == 0) {
    return Status::NotFound("workspace '" + name + "' is not registered");
  }
  return Status::OK();
}

std::shared_ptr<const PreparedWorkspace> WorkspaceRegistry::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  // Live entries serve the latest published version: resolving is the
  // epoch pin — the returned pointer stays bit-stable across later
  // publications.
  if (it->second.live) return it->second.live->Current().workspace;
  return it->second.ws;
}

std::shared_ptr<LiveWorkspace> WorkspaceRegistry::FindLive(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.live;
}

Status WorkspaceRegistry::Resolve(const std::string& name, uint32_t k,
                                  double r, Resolved* out) const {
  Registered reg;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      return Status::NotFound("workspace '" + name + "' is not registered");
    }
    reg = it->second;
  }
  Resolved res;
  if (reg.live) {
    PublishedVersion version = reg.live->Current();
    res.ws = std::move(version.workspace);
    res.live = true;
    res.epoch = version.epoch;
    res.staleness = reg.live->Staleness();
  } else {
    res.ws = std::move(reg.ws);
  }
  const PreparedWorkspace& ws = *res.ws;
  if (!ws.Serves(k, r)) {
    std::string range =
        ws.scored ? "r in [" + std::to_string(ws.threshold) + ", " +
                        std::to_string(ws.score_cover) + "]"
                  : "r == " + std::to_string(ws.threshold);
    if (ws.scored && ws.is_distance) {
      range = "r in [" + std::to_string(ws.score_cover) + ", " +
              std::to_string(ws.threshold) + "]";
    }
    return Status::InvalidArgument(
        "workspace '" + name + "' cannot serve (k=" + std::to_string(k) +
        ", r=" + std::to_string(r) + "); it serves k >= " +
        std::to_string(ws.k) + " and " + range);
  }
  *out = std::move(res);
  return Status::OK();
}

Status WorkspaceRegistry::Resolve(
    const std::string& name, uint32_t k, double r,
    std::shared_ptr<const PreparedWorkspace>* out) const {
  Resolved res;
  Status s = Resolve(name, k, r, &res);
  if (!s.ok()) return s;
  *out = std::move(res.ws);
  return s;
}

std::vector<WorkspaceRegistry::Entry> WorkspaceRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [name, reg] : entries_) {
    Entry e;
    std::shared_ptr<const PreparedWorkspace> pinned = reg.ws;
    if (reg.live) {
      PublishedVersion version = reg.live->Current();
      pinned = std::move(version.workspace);
      const StalenessReport staleness = reg.live->Staleness();
      e.live = true;
      e.epoch = version.epoch;
      e.staleness_batches = staleness.batches;
      e.staleness_seconds = staleness.seconds;
    }
    const PreparedWorkspace& ws = *pinned;
    e.name = name;
    e.k = ws.k;
    e.threshold = ws.threshold;
    e.score_cover = ws.score_cover;
    e.scored = ws.scored;
    e.is_distance = ws.is_distance;
    e.version = ws.version;
    e.num_components = ws.components.size();
    e.num_vertices = ws.num_vertices();
    e.snapshot_version = reg.snapshot_version;
    e.load_seconds = reg.load_seconds;
    e.lazy_loaded = reg.lazy_loaded;
    e.mapped = reg.mapped;
    out.push_back(std::move(e));
  }
  return out;
}

size_t WorkspaceRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace krcore
