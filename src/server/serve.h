#ifndef KRCORE_SERVER_SERVE_H_
#define KRCORE_SERVER_SERVE_H_

#include <cstdint>
#include <istream>
#include <ostream>

#include "server/query_server.h"
#include "server/workspace_registry.h"
#include "util/status.h"

namespace krcore {

/// Totals of one ServeSession run (mirrored into the final `stats` dump by
/// the krcore_server binary).
struct SessionReport {
  uint64_t lines_read = 0;
  uint64_t queries_submitted = 0;
  uint64_t responses_written = 0;
  uint64_t parse_errors = 0;
  uint64_t admin_commands = 0;
};

/// Drives a QueryServer over a newline-delimited byte-stream transport:
/// reads request lines from `in` (see server/protocol.h for the grammar),
/// submits each query without waiting, and writes one JSON response line
/// per request to `out` *in submission order* (head-of-line responses are
/// awaited as needed, so output order is deterministic while the pipeline
/// still overlaps derive/mine work across in-flight queries).
///
/// Besides query lines, four admin commands are served inline:
///   stats   write the server's JSON stats dump
///   list    write the registry's entries as a JSON array
///   ping    write {"pong":true} (liveness probe)
///   quit    drain pending responses and return
/// Admin commands are barriers: pending query responses are flushed first,
/// so a `stats` line observes every query written before it.
///
/// Blank lines and `#` comment lines are skipped. Returns when `in` hits
/// EOF (or `quit`), after draining every pending response.
SessionReport ServeSession(QueryServer* server,
                           const WorkspaceRegistry* registry,
                           std::istream& in, std::ostream& out);

/// The registry listing the `list` command writes: a JSON array with one
/// object per registered workspace (name, k, serving interval, version,
/// component/vertex counts).
std::string RegistryListJson(const WorkspaceRegistry& registry);

}  // namespace krcore

#endif  // KRCORE_SERVER_SERVE_H_
