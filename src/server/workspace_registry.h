#ifndef KRCORE_SERVER_WORKSPACE_REGISTRY_H_
#define KRCORE_SERVER_WORKSPACE_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "ingest/live_workspace.h"
#include "util/status.h"

namespace krcore {

/// Named, immutable prepared workspaces held resident for serving. The
/// registry is the server's source of substrates: each entry is a
/// PreparedWorkspace (built in-process or loaded from a snapshot file) that
/// concurrent queries read without synchronization — entries are frozen at
/// registration and handed out as shared_ptr<const>, so a Replace/Remove
/// never invalidates a query that is already mining the old substrate.
class WorkspaceRegistry {
 public:
  /// How AddFromSnapshot materializes a v4 snapshot: kEager validates the
  /// whole file before registering (v3 semantics); kLazy mmaps it and
  /// defers per-component validation to first touch, making cold-start
  /// O(components) instead of O(substrate). v1-v3 files always load
  /// eagerly under either mode.
  enum class SnapshotLoadMode { kEager, kLazy };

  /// One row of List(): the serving identity of a registered workspace,
  /// plus load observability (how the substrate got resident).
  struct Entry {
    std::string name;
    uint32_t k = 0;
    double threshold = 0.0;
    double score_cover = 0.0;
    bool scored = false;
    bool is_distance = false;
    uint64_t version = 0;
    size_t num_components = 0;
    uint64_t num_vertices = 0;
    /// Snapshot format version the entry was loaded from; 0 when the
    /// workspace was built in-process (Add/Replace).
    uint32_t snapshot_version = 0;
    /// Wall seconds AddFromSnapshot spent in LoadWorkspaceSnapshot.
    double load_seconds = 0.0;
    /// True when per-component validation was deferred to first touch.
    bool lazy_loaded = false;
    /// True when the workspace serves from an mmap.
    bool mapped = false;
    /// Live-updating registration (AddLive): the entry serves the latest
    /// published version of an ingestion-fed LiveWorkspace instead of a
    /// frozen substrate. `epoch` and the staleness pair are sampled at
    /// List() time.
    bool live = false;
    uint64_t epoch = 0;
    uint64_t staleness_batches = 0;
    double staleness_seconds = 0.0;
  };

  /// What Resolve hands the server: the substrate pinned for the query,
  /// plus — for live entries — the published epoch it came from and the
  /// staleness observed at resolution time.
  struct Resolved {
    std::shared_ptr<const PreparedWorkspace> ws;
    bool live = false;
    uint64_t epoch = 0;
    StalenessReport staleness;
  };

  /// Registers `ws` under `name`. Rejects empty names, names already
  /// registered (use Replace to swap a live entry), and empty workspaces
  /// (k == 0 — nothing PrepareWorkspace produced).
  Status Add(const std::string& name, PreparedWorkspace ws);

  /// Atomically swaps the entry under `name` (which need not exist yet) —
  /// the hot-reload path for a workspace re-prepared or updated offline.
  /// In-flight queries keep the substrate they resolved; only queries
  /// admitted after the swap see the new one.
  Status Replace(const std::string& name, PreparedWorkspace ws);

  /// LoadWorkspaceSnapshot(path) + Add, recording the load time, snapshot
  /// version and mapping mode on the entry. Eager loads re-validate every
  /// structural invariant, so a corrupt file never registers; lazy loads
  /// verify the file's meta/table skeleton up front and surface component
  /// corruption as clean per-query errors on first touch.
  Status AddFromSnapshot(const std::string& name, const std::string& path,
                         SnapshotLoadMode mode);
  Status AddFromSnapshot(const std::string& name, const std::string& path) {
    return AddFromSnapshot(name, path, SnapshotLoadMode::kEager);
  }

  /// Registers `alias` as a second name for the substrate currently under
  /// `existing` (no copy — both names share it). The krcore_server binary
  /// aliases its first snapshot to "default" so single-workspace sessions
  /// can omit `ws=`. The alias is an independent entry afterwards: Replace
  /// and Remove on either name do not affect the other.
  Status Alias(const std::string& alias, const std::string& existing);

  /// Live-updating registration: the entry serves `live`'s latest
  /// published version — every Find/Resolve re-samples the published
  /// pointer, so queries admitted after a publication see the new epoch
  /// while in-flight queries keep the version they pinned. The caller owns
  /// the ingestion side (LiveWorkspace outlives its pipeline; the shared_ptr
  /// here keeps the object itself alive past Remove for in-flight readers).
  Status AddLive(const std::string& name, std::shared_ptr<LiveWorkspace> live);

  Status Remove(const std::string& name);

  /// The workspace registered under `name`, or nullptr. The returned
  /// pointer keeps the substrate alive independently of later
  /// Replace/Remove calls.
  std::shared_ptr<const PreparedWorkspace> Find(const std::string& name) const;

  /// Find + servability check: NotFound for an unknown name,
  /// InvalidArgument naming the workspace's serving range when it cannot
  /// serve (k, r), otherwise OK with *out set.
  Status Resolve(const std::string& name, uint32_t k, double r,
                 std::shared_ptr<const PreparedWorkspace>* out) const;

  /// Resolve variant carrying live-serving metadata (epoch + staleness at
  /// resolution) for response stamping; identical servability rules.
  Status Resolve(const std::string& name, uint32_t k, double r,
                 Resolved* out) const;

  /// The LiveWorkspace registered under `name`, or nullptr for unknown
  /// names and frozen entries.
  std::shared_ptr<LiveWorkspace> FindLive(const std::string& name) const;

  /// Serving identities of every registered workspace, in name order.
  std::vector<Entry> List() const;

  size_t size() const;

 private:
  /// A resident substrate plus how it got here. The load metadata is
  /// immutable alongside the workspace; aliases share the substrate but
  /// copy the metadata (they describe the same load).
  struct Registered {
    /// Frozen entries: the substrate itself. Live entries: unset — the
    /// substrate is re-sampled from `live` on every lookup.
    std::shared_ptr<const PreparedWorkspace> ws;
    std::shared_ptr<LiveWorkspace> live;
    uint32_t snapshot_version = 0;
    double load_seconds = 0.0;
    bool lazy_loaded = false;
    bool mapped = false;
  };

  Status AddLocked(const std::string& name, Registered reg);

  mutable std::mutex mu_;
  std::map<std::string, Registered> entries_;
};

}  // namespace krcore

#endif  // KRCORE_SERVER_WORKSPACE_REGISTRY_H_
