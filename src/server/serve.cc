#include "server/serve.h"

#include <deque>
#include <future>
#include <string>
#include <utility>

#include "server/protocol.h"

namespace krcore {
namespace {

/// Pending responses are bounded so a client that streams requests faster
/// than they resolve cannot grow the future queue without limit; the head
/// response is awaited (and written) once the bound is hit. The server's
/// own admission control bounds executing work — this only bounds the
/// transport-side bookkeeping.
constexpr size_t kMaxPendingResponses = 1024;

std::string TrimmedView(const std::string& line) {
  size_t start = line.find_first_not_of(" \t\r");
  if (start == std::string::npos) return "";
  size_t end = line.find_last_not_of(" \t\r");
  return line.substr(start, end - start + 1);
}

}  // namespace

std::string RegistryListJson(const WorkspaceRegistry& registry) {
  std::string out = "[";
  bool first = true;
  for (const auto& e : registry.List()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + JsonEscape(e.name) + "\"";
    out += ",\"k\":" + std::to_string(e.k);
    out += ",\"r\":" + JsonDouble(e.threshold);
    out += ",\"cover\":" + JsonDouble(e.score_cover);
    out += ",\"scored\":";
    out += e.scored ? "true" : "false";
    out += ",\"distance_metric\":";
    out += e.is_distance ? "true" : "false";
    out += ",\"version\":" + std::to_string(e.version);
    out += ",\"components\":" + std::to_string(e.num_components);
    out += ",\"vertices\":" + std::to_string(e.num_vertices);
    out += ",\"snapshot_version\":" + std::to_string(e.snapshot_version);
    out += ",\"load_seconds\":" + JsonDouble(e.load_seconds);
    out += ",\"lazy\":";
    out += e.lazy_loaded ? "true" : "false";
    out += ",\"mapped\":";
    out += e.mapped ? "true" : "false";
    out += "}";
  }
  out += "]";
  return out;
}

SessionReport ServeSession(QueryServer* server,
                           const WorkspaceRegistry* registry,
                           std::istream& in, std::ostream& out) {
  SessionReport report;
  std::deque<std::shared_future<QueryResponse>> pending;

  auto WriteHead = [&] {
    QueryResponse response = pending.front().get();
    pending.pop_front();
    out << SerializeResponse(response) << '\n';
    ++report.responses_written;
  };
  auto DrainPending = [&] {
    while (!pending.empty()) WriteHead();
    out.flush();
  };

  std::string line;
  while (std::getline(in, line)) {
    ++report.lines_read;
    const std::string trimmed = TrimmedView(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;

    if (trimmed == "stats" || trimmed == "list" || trimmed == "ping" ||
        trimmed == "quit") {
      ++report.admin_commands;
      DrainPending();  // admin commands are ordering barriers
      if (trimmed == "stats") {
        out << server->Stats().ToJson() << '\n';
      } else if (trimmed == "list") {
        out << RegistryListJson(*registry) << '\n';
      } else if (trimmed == "ping") {
        out << "{\"pong\":true}" << '\n';
      } else {
        out.flush();
        return report;
      }
      out.flush();
      continue;
    }

    QueryRequest request;
    std::string id;
    Status parsed = ParseRequestLine(trimmed, &request, &id);
    if (!parsed.ok()) {
      // NotFound = nothing to execute (blank-equivalent); anything else is
      // a malformed request answered immediately, in order, with the id
      // preserved when one was readable.
      if (parsed.code() == StatusCode::kNotFound) continue;
      ++report.parse_errors;
      DrainPending();
      QueryResponse error;
      error.id = id;
      error.status = std::move(parsed);
      out << SerializeResponse(error) << '\n';
      out.flush();
      ++report.responses_written;
      continue;
    }

    ++report.queries_submitted;
    pending.push_back(server->Submit(request));
    while (pending.size() > kMaxPendingResponses) WriteHead();
  }
  DrainPending();
  return report;
}

}  // namespace krcore
