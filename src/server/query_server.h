#ifndef KRCORE_SERVER_QUERY_SERVER_H_
#define KRCORE_SERVER_QUERY_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/enumerate.h"
#include "core/maximum.h"
#include "core/parallel.h"
#include "server/protocol.h"
#include "server/workspace_registry.h"
#include "util/status.h"

namespace krcore {

/// Configuration of the staged query executor.
struct ServerOptions {
  /// Admission bound: queries admitted but not yet responded (coalesced
  /// followers are free — they add no execution). A full server rejects
  /// with ResourceExhausted instead of queueing unboundedly.
  uint32_t queue_capacity = 64;
  /// Stage workers. One each already pipelines: query B derives while
  /// query A mines.
  uint32_t derive_threads = 1;
  uint32_t mine_threads = 1;
  /// Deadline applied to requests that carry no timeout of their own,
  /// measured from admission. <= 0 means no default deadline.
  double default_timeout_seconds = 60.0;
  /// Share one derivation + one mining pass among concurrently admitted
  /// identical cells (same workspace, op, k, r, limit).
  bool coalesce = true;
  /// Per-query mining parallelism (the existing work-stealing TaskPool).
  ParallelOptions parallel;
  /// Search configuration templates; k, deadline and parallel are
  /// overwritten per query.
  EnumOptions enumerate = AdvEnumOptions(1);
  MaxOptions maximum = AdvMaxOptions(1);
};

/// Per-stage instrumentation counters (MiningStats-style: plain summed
/// integers plus wall-clock accumulators; snapshot via QueryServer::Stats).
struct ServerStageStats {
  uint64_t entered = 0;    // jobs a stage worker picked up
  uint64_t completed = 0;  // jobs that left the stage successfully
  uint64_t failed = 0;     // jobs the stage failed (fault, error, deadline)
  double wait_seconds = 0.0;     // summed time jobs sat queued before it
  double service_seconds = 0.0;  // summed stage execution time
  uint64_t max_queue_depth = 0;  // high-water mark of its input queue
};

/// One consistent snapshot of the server's counters.
struct ServerStatsSnapshot {
  uint64_t received = 0;            // Submit calls
  uint64_t admitted = 0;            // entered the pipeline as a new job
  uint64_t coalesce_hits = 0;       // requests attached to an in-flight job
  uint64_t rejected_queue_full = 0; // ResourceExhausted at admission
  uint64_t rejected_unservable = 0; // unknown workspace / (k,r) out of range
  uint64_t deadline_expired = 0;    // responses with DeadlineExceeded
  uint64_t injected_faults = 0;     // responses failed by a server/* failpoint
  uint64_t completed_ok = 0;        // responses with OK
  uint64_t queue_depth = 0;         // jobs in flight right now
  ServerStageStats derive;
  ServerStageStats mine;
  /// Registry contents at snapshot time: serving identity plus load
  /// observability (snapshot version, load seconds, lazy/mmap mode).
  std::vector<WorkspaceRegistry::Entry> workspaces;

  /// The JSON stats dump (one object, stable key order), served by the
  /// transport's `stats` command and krcore_server --stats.
  std::string ToJson() const;
};

/// The long-lived query server: a staged executor over a WorkspaceRegistry.
///
///   parse -> admit -> derive -> mine -> respond
///
/// Parsing lives in the transport (server/protocol.h, server/serve.h).
/// Admission (Submit) validates the request against the registry, applies
/// the queue bound, and coalesces identical in-flight cells: concurrently
/// admitted requests for the same (workspace, op, k, r, limit) share ONE
/// derivation and ONE mining pass whose response fans out to every waiter
/// (the coalesced execution runs under the leader's deadline). The derive
/// stage turns the registered base workspace into the query's (k, r) cell
/// via DeriveWorkspace — zero oracle calls, see core/pipeline.h — and feeds
/// the mine stage, which runs the branch-and-bound engines with per-query
/// deadlines on the configured TaskPool parallelism. Stages run on their
/// own worker threads, so a slow mine overlaps the next query's derive.
///
/// Failure injection: the `server/admit`, `server/derive`, `server/mine`
/// and `server/respond` failpoints (util/failpoint.h) fire at the stage
/// boundaries; a fired site fails only the affected query with a clean
/// INTERNAL response — the server keeps serving.
///
/// Thread safety: Submit may be called from any number of threads. The
/// registry may be mutated concurrently (Replace/Remove); in-flight queries
/// keep the substrate they resolved at admission.
class QueryServer {
 public:
  QueryServer(const WorkspaceRegistry* registry, const ServerOptions& options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Spawns the stage workers. Submit before Start queues work.
  void Start();

  /// Stops accepting, drains every in-flight job, then joins the workers.
  /// Idempotent; the destructor calls it.
  void Stop();

  /// Admission keeps accepting (and coalescing) but stage workers pick up
  /// no new jobs until Resume — the drain/hold point for admin operations,
  /// and what lets tests line up concurrent duplicate cells
  /// deterministically.
  void Pause();
  void Resume();

  /// Admits `request` (or rejects it with an immediately ready response).
  /// The returned future resolves exactly once; it never throws.
  std::shared_future<QueryResponse> Submit(const QueryRequest& request);

  /// Submit + wait: the synchronous client call.
  QueryResponse Execute(const QueryRequest& request);

  /// Blocks until every admitted job has been responded to.
  void Drain();

  ServerStatsSnapshot Stats() const;

  const WorkspaceRegistry* registry() const { return registry_; }
  const ServerOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Waiter {
    std::string id;
    bool coalesced = false;
    Clock::time_point admitted_at;
    std::promise<QueryResponse> promise;
  };

  /// One admitted execution: the leader's request plus every coalesced
  /// waiter. Moves derive_queue_ -> mine_queue_ -> responded.
  struct Job {
    QueryRequest request;  // r resolved to the served threshold
    Deadline deadline;
    std::string key;
    std::shared_ptr<const PreparedWorkspace> base;
    /// Live-serving metadata sampled at admission (see
    /// WorkspaceRegistry::Resolved); copied onto every waiter's response.
    bool live = false;
    uint64_t epoch = 0;
    StalenessReport staleness;
    /// Filled by the derive stage when the cell differs from the base's
    /// identity; otherwise the base components serve directly.
    PreparedWorkspace derived;
    bool needs_derive = false;
    /// Set when a server/* failpoint failed this job (stats attribution).
    bool injected_fault = false;
    Clock::time_point derive_enqueued_at{};
    Clock::time_point mine_enqueued_at{};
    Clock::time_point exec_started_at{};
    double derive_seconds = 0.0;
    std::vector<Waiter> waiters;
  };

  void DeriveLoop();
  void MineLoop();
  /// Pops the next job from `queue` honoring pause/stop; false = shut down.
  bool NextJob(std::deque<std::shared_ptr<Job>>* queue,
               std::condition_variable* cv, std::shared_ptr<Job>* out);
  /// Runs the mining/derive-op payload for `job` into `response`.
  void ExecuteJob(Job* job, QueryResponse* response);
  /// Removes the job from the in-flight map and fulfills every waiter with
  /// a per-waiter copy of `response`.
  void Respond(const std::shared_ptr<Job>& job, QueryResponse response);
  /// Ready-made failure response for pre-admission rejections.
  std::shared_future<QueryResponse> Reject(const QueryRequest& request,
                                           Status status);

  const WorkspaceRegistry* registry_;
  const ServerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable derive_cv_;
  std::condition_variable mine_cv_;
  std::condition_variable drained_cv_;
  std::deque<std::shared_ptr<Job>> derive_queue_;
  std::deque<std::shared_ptr<Job>> mine_queue_;
  /// Coalescing map: key -> in-flight job (erased at respond time, under
  /// mu_, so a request can never attach to an already-responded job).
  std::unordered_map<std::string, std::shared_ptr<Job>> inflight_;
  uint64_t jobs_inflight_ = 0;
  bool started_ = false;
  bool paused_ = false;
  bool stop_accepting_ = false;
  bool stop_workers_ = false;
  ServerStatsSnapshot stats_;
  std::vector<std::thread> workers_;
};

}  // namespace krcore

#endif  // KRCORE_SERVER_QUERY_SERVER_H_
