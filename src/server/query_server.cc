#include "server/query_server.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/failpoint.h"
#include "util/timer.h"

namespace krcore {
namespace {

double SecondsBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  if (to <= from) return 0.0;
  return std::chrono::duration<double>(to - from).count();
}

/// Coalescing identity of a request: workspace, op, k, the exact bit
/// pattern of the resolved r, and the response limit. Two requests with
/// equal keys are served by one derivation + one mining pass.
std::string CoalesceKey(const QueryRequest& request) {
  uint64_t r_bits = 0;
  static_assert(sizeof(r_bits) == sizeof(request.r));
  std::memcpy(&r_bits, &request.r, sizeof(r_bits));
  return request.workspace + '\x1f' + QueryKindName(request.kind) + '\x1f' +
         std::to_string(request.k) + '\x1f' + std::to_string(r_bits) +
         '\x1f' + std::to_string(request.limit);
}

void AppendStage(std::string* out, const char* name,
                 const ServerStageStats& s) {
  *out += "\"";
  *out += name;
  *out += "\":{\"entered\":" + std::to_string(s.entered) +
          ",\"completed\":" + std::to_string(s.completed) +
          ",\"failed\":" + std::to_string(s.failed) +
          ",\"wait_seconds\":" + JsonDouble(s.wait_seconds) +
          ",\"service_seconds\":" + JsonDouble(s.service_seconds) +
          ",\"max_queue_depth\":" + std::to_string(s.max_queue_depth) + "}";
}

}  // namespace

std::string ServerStatsSnapshot::ToJson() const {
  std::string out = "{";
  out += "\"received\":" + std::to_string(received);
  out += ",\"admitted\":" + std::to_string(admitted);
  out += ",\"coalesce_hits\":" + std::to_string(coalesce_hits);
  out += ",\"rejected_queue_full\":" + std::to_string(rejected_queue_full);
  out += ",\"rejected_unservable\":" + std::to_string(rejected_unservable);
  out += ",\"deadline_expired\":" + std::to_string(deadline_expired);
  out += ",\"injected_faults\":" + std::to_string(injected_faults);
  out += ",\"completed_ok\":" + std::to_string(completed_ok);
  out += ",\"queue_depth\":" + std::to_string(queue_depth);
  out += ",";
  AppendStage(&out, "derive", derive);
  out += ",";
  AppendStage(&out, "mine", mine);
  out += ",\"workspaces\":[";
  bool first = true;
  for (const auto& w : workspaces) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + JsonEscape(w.name) + "\"";
    out += ",\"snapshot_version\":" + std::to_string(w.snapshot_version);
    out += ",\"load_seconds\":" + JsonDouble(w.load_seconds);
    out += ",\"lazy\":";
    out += w.lazy_loaded ? "true" : "false";
    out += ",\"mapped\":";
    out += w.mapped ? "true" : "false";
    out += ",\"live\":";
    out += w.live ? "true" : "false";
    if (w.live) {
      out += ",\"epoch\":" + std::to_string(w.epoch);
      out += ",\"staleness_batches\":" + std::to_string(w.staleness_batches);
      out += ",\"staleness_seconds\":" + JsonDouble(w.staleness_seconds);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

QueryServer::QueryServer(const WorkspaceRegistry* registry,
                         const ServerOptions& options)
    : registry_(registry), options_(options) {}

QueryServer::~QueryServer() { Stop(); }

void QueryServer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stop_workers_ = false;
  stop_accepting_ = false;
  uint32_t derive_threads = std::max(1u, options_.derive_threads);
  uint32_t mine_threads = std::max(1u, options_.mine_threads);
  workers_.reserve(derive_threads + mine_threads);
  for (uint32_t i = 0; i < derive_threads; ++i) {
    workers_.emplace_back([this] { DeriveLoop(); });
  }
  for (uint32_t i = 0; i < mine_threads; ++i) {
    workers_.emplace_back([this] { MineLoop(); });
  }
}

void QueryServer::Stop() {
  std::vector<std::shared_ptr<Job>> orphaned;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_accepting_ && workers_.empty()) return;  // already stopped
    stop_accepting_ = true;
    paused_ = false;
    if (!started_) {
      // No workers will ever drain the queues; fail the queued jobs below
      // (outside the lock) so their futures resolve.
      orphaned.assign(derive_queue_.begin(), derive_queue_.end());
      orphaned.insert(orphaned.end(), mine_queue_.begin(), mine_queue_.end());
      derive_queue_.clear();
      mine_queue_.clear();
    }
    derive_cv_.notify_all();
    mine_cv_.notify_all();
  }
  for (const auto& job : orphaned) {
    QueryResponse response;
    response.status = Status::ResourceExhausted("server stopped");
    Respond(job, std::move(response));
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [this] { return jobs_inflight_ == 0; });
    stop_workers_ = true;
    derive_cv_.notify_all();
    mine_cv_.notify_all();
  }
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

void QueryServer::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void QueryServer::Resume() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = false;
  derive_cv_.notify_all();
  mine_cv_.notify_all();
}

void QueryServer::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return jobs_inflight_ == 0; });
}

std::shared_future<QueryResponse> QueryServer::Reject(
    const QueryRequest& request, Status status) {
  QueryResponse response;
  response.id = request.id;
  response.kind = request.kind;
  response.k = request.k;
  response.r = request.has_r() ? request.r : 0.0;
  response.status = std::move(status);
  std::promise<QueryResponse> promise;
  promise.set_value(std::move(response));
  return promise.get_future().share();
}

std::shared_future<QueryResponse> QueryServer::Submit(
    const QueryRequest& request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.received;
  }
  if (Failpoints::ShouldFail("server/admit")) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.injected_faults;
    return Reject(request,
                  Status::Internal("injected fault at failpoint "
                                   "'server/admit'"));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_accepting_) {
      ++stats_.rejected_queue_full;
      return Reject(request, Status::ResourceExhausted("server is stopping"));
    }
  }

  // Resolve the target workspace and the effective r before taking a queue
  // slot: an unservable request never occupies capacity.
  std::shared_ptr<const PreparedWorkspace> base = registry_->Find(
      request.workspace);
  if (!base) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected_unservable;
    return Reject(request, Status::NotFound("workspace '" +
                                            request.workspace +
                                            "' is not registered"));
  }
  QueryRequest resolved = request;
  if (!resolved.has_r()) resolved.r = base->threshold;
  if (resolved.k == 0 || !std::isfinite(resolved.r)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected_unservable;
    return Reject(resolved, Status::InvalidArgument(
                                "query needs k >= 1 and a finite r"));
  }
  WorkspaceRegistry::Resolved resolution;
  if (Status s = registry_->Resolve(resolved.workspace, resolved.k,
                                    resolved.r, &resolution);
      !s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected_unservable;
    return Reject(resolved, std::move(s));
  }
  base = std::move(resolution.ws);

  Waiter waiter;
  waiter.id = resolved.id;
  waiter.admitted_at = Clock::now();
  std::shared_future<QueryResponse> future =
      waiter.promise.get_future().share();
  const std::string key = CoalesceKey(resolved);

  std::unique_lock<std::mutex> lock(mu_);
  if (options_.coalesce) {
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      // Identical cell already admitted and not yet responded: share its
      // execution. Respond() erases the map entry under mu_ before
      // fulfilling anyone, so this attach is race-free.
      waiter.coalesced = true;
      ++stats_.coalesce_hits;
      it->second->waiters.push_back(std::move(waiter));
      return future;
    }
  }
  if (jobs_inflight_ >= options_.queue_capacity) {
    ++stats_.rejected_queue_full;
    lock.unlock();
    return Reject(resolved,
                  Status::ResourceExhausted(
                      "server queue is full (" +
                      std::to_string(options_.queue_capacity) +
                      " queries in flight)"));
  }

  auto job = std::make_shared<Job>();
  job->request = std::move(resolved);
  const double timeout = job->request.timeout_seconds > 0.0
                             ? job->request.timeout_seconds
                             : options_.default_timeout_seconds;
  job->deadline = timeout > 0.0 ? Deadline::AfterSeconds(timeout)
                                : Deadline::Infinite();
  job->key = key;
  job->base = std::move(base);
  job->live = resolution.live;
  job->epoch = resolution.epoch;
  job->staleness = resolution.staleness;
  job->needs_derive = job->request.k != job->base->k ||
                      job->request.r != job->base->threshold;
  job->derive_enqueued_at = waiter.admitted_at;
  job->waiters.push_back(std::move(waiter));
  inflight_[key] = job;
  ++jobs_inflight_;
  ++stats_.admitted;
  stats_.queue_depth = jobs_inflight_;
  derive_queue_.push_back(std::move(job));
  stats_.derive.max_queue_depth =
      std::max<uint64_t>(stats_.derive.max_queue_depth, derive_queue_.size());
  derive_cv_.notify_one();
  return future;
}

QueryResponse QueryServer::Execute(const QueryRequest& request) {
  return Submit(request).get();
}

bool QueryServer::NextJob(std::deque<std::shared_ptr<Job>>* queue,
                          std::condition_variable* cv,
                          std::shared_ptr<Job>* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv->wait(lock, [&] {
    return stop_workers_ || (!paused_ && !queue->empty());
  });
  if (stop_workers_) return false;
  *out = std::move(queue->front());
  queue->pop_front();
  return true;
}

void QueryServer::DeriveLoop() {
  std::shared_ptr<Job> job;
  while (NextJob(&derive_queue_, &derive_cv_, &job)) {
    const Clock::time_point picked = Clock::now();
    job->exec_started_at = picked;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.derive.entered;
      stats_.derive.wait_seconds +=
          SecondsBetween(job->derive_enqueued_at, picked);
    }
    if (Failpoints::ShouldFail("server/derive")) {
      job->injected_fault = true;
      QueryResponse response;
      response.status =
          Status::Internal("injected fault at failpoint 'server/derive'");
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.derive.failed;
      }
      Respond(job, std::move(response));
      job.reset();
      continue;
    }
    if (job->deadline.Expired()) {
      QueryResponse response;
      response.status = Status::DeadlineExceeded(
          "deadline expired before the derive stage");
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.derive.failed;
      }
      Respond(job, std::move(response));
      job.reset();
      continue;
    }
    Status derive_status;
    if (job->needs_derive) {
      PipelineOptions pipe;
      pipe.k = job->request.k;
      pipe.deadline = job->deadline;
      derive_status = DeriveWorkspace(*job->base, job->request.k,
                                      job->request.r, pipe, &job->derived);
    }
    job->derive_seconds = SecondsBetween(picked, Clock::now());
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.derive.service_seconds += job->derive_seconds;
      if (derive_status.ok()) {
        ++stats_.derive.completed;
        job->mine_enqueued_at = Clock::now();
        mine_queue_.push_back(job);
        stats_.mine.max_queue_depth = std::max<uint64_t>(
            stats_.mine.max_queue_depth, mine_queue_.size());
        mine_cv_.notify_one();
      } else {
        ++stats_.derive.failed;
      }
    }
    if (!derive_status.ok()) {
      QueryResponse response;
      response.status = std::move(derive_status);
      Respond(job, std::move(response));
    }
    job.reset();
  }
}

void QueryServer::ExecuteJob(Job* job, QueryResponse* response) {
  const std::vector<ComponentContext>& components =
      job->needs_derive ? job->derived.components : job->base->components;
  switch (job->request.kind) {
    case QueryKind::kEnumerate: {
      EnumOptions opts = options_.enumerate;
      opts.k = job->request.k;
      opts.deadline = job->deadline;
      opts.parallel = options_.parallel;
      MaximalCoresResult result = EnumerateMaximalCores(components, opts);
      response->status = std::move(result.status);
      response->stats = result.stats;
      response->count = result.cores.size();
      if (job->request.limit > 0 &&
          result.cores.size() > job->request.limit) {
        result.cores.resize(static_cast<size_t>(job->request.limit));
      }
      response->cores = std::move(result.cores);
      break;
    }
    case QueryKind::kMaximum: {
      MaxOptions opts = options_.maximum;
      opts.k = job->request.k;
      opts.deadline = job->deadline;
      opts.parallel = options_.parallel;
      MaximumCoreResult result = FindMaximumCore(components, opts);
      response->status = std::move(result.status);
      response->stats = result.stats;
      response->count = result.best.size();
      if (!result.best.empty()) {
        response->cores.push_back(std::move(result.best));
      }
      break;
    }
    case QueryKind::kDerive: {
      // The substrate itself is the answer: report the cell's size. The
      // derive stage already did the work (or the base cell was asked for).
      VertexId vertices = 0;
      for (const auto& c : components) vertices += c.size();
      response->count = vertices;
      response->num_components = components.size();
      response->stats.components = components.size();
      break;
    }
  }
}

void QueryServer::MineLoop() {
  std::shared_ptr<Job> job;
  while (NextJob(&mine_queue_, &mine_cv_, &job)) {
    const Clock::time_point picked = Clock::now();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.mine.entered;
      stats_.mine.wait_seconds +=
          SecondsBetween(job->mine_enqueued_at, picked);
    }
    QueryResponse response;
    if (Failpoints::ShouldFail("server/mine")) {
      job->injected_fault = true;
      response.status =
          Status::Internal("injected fault at failpoint 'server/mine'");
    } else if (job->deadline.Expired()) {
      response.status = Status::DeadlineExceeded(
          "deadline expired before the mine stage");
    } else {
      ExecuteJob(job.get(), &response);
    }
    const double service = SecondsBetween(picked, Clock::now());
    response.mine_seconds = service;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.mine.service_seconds += service;
      if (response.status.ok()) {
        ++stats_.mine.completed;
      } else {
        ++stats_.mine.failed;
      }
    }
    Respond(job, std::move(response));
    job.reset();
  }
}

void QueryServer::Respond(const std::shared_ptr<Job>& job,
                          QueryResponse response) {
  // Shared payload fields every waiter sees.
  response.kind = job->request.kind;
  response.k = job->request.k;
  response.r = job->request.r;
  response.workspace_version =
      job->base ? job->base->version : 0;
  response.live = job->live;
  response.epoch = job->epoch;
  response.staleness_batches = job->staleness.batches;
  response.staleness_seconds = job->staleness.seconds;
  response.derive_seconds = job->derive_seconds;
  if (Failpoints::ShouldFail("server/respond")) {
    job->injected_fault = true;
    QueryResponse failed;
    failed.kind = response.kind;
    failed.k = response.k;
    failed.r = response.r;
    failed.status =
        Status::Internal("injected fault at failpoint 'server/respond'");
    response = std::move(failed);
  }
  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Erase the coalescing entry first: after this, no Submit can attach.
    auto it = inflight_.find(job->key);
    if (it != inflight_.end() && it->second == job) inflight_.erase(it);
    waiters = std::move(job->waiters);
    job->waiters.clear();
    --jobs_inflight_;
    stats_.queue_depth = jobs_inflight_;
    // Response-level counters fan out with the coalesced waiters: ten OK
    // responses served by seven executions count ten here.
    if (response.status.ok()) {
      stats_.completed_ok += waiters.size();
    } else if (response.status.IsDeadlineExceeded()) {
      stats_.deadline_expired += waiters.size();
    }
    if (job->injected_fault) ++stats_.injected_faults;
    drained_cv_.notify_all();
  }
  for (auto& waiter : waiters) {
    QueryResponse copy = response;
    copy.id = waiter.id;
    copy.coalesced = waiter.coalesced;
    copy.wait_seconds =
        SecondsBetween(waiter.admitted_at, job->exec_started_at);
    waiter.promise.set_value(std::move(copy));
  }
}

ServerStatsSnapshot QueryServer::Stats() const {
  ServerStatsSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = stats_;
  }
  // Registry listing outside mu_ — it takes the registry's own lock.
  snapshot.workspaces = registry_->List();
  return snapshot;
}

}  // namespace krcore
