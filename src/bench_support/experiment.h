#ifndef KRCORE_BENCH_SUPPORT_EXPERIMENT_H_
#define KRCORE_BENCH_SUPPORT_EXPERIMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "core/krcore_types.h"
#include "datasets/dataset.h"
#include "similarity/similarity_oracle.h"
#include "util/options.h"

namespace krcore {

/// Shared configuration for the figure-regenerating bench drivers.
struct ExperimentEnv {
  /// Per-run wall-clock limit; expired runs are reported as INF like the
  /// paper's one-hour cutoff (Sec 8.1). 20 s on the scaled-down analogues
  /// plays the role the 1 h limit plays at the paper's scale.
  double timeout_seconds = 20.0;
  /// Dataset scale factor (1.0 ≈ 20k vertices; see DESIGN.md §4).
  double scale = 1.0;
  /// Quick mode shrinks datasets and sweeps for smoke runs / CI.
  bool quick = false;
  /// Threads for the per-component parallel drivers (--threads; 0 = all
  /// hardware cores, 1 = the paper's sequential setting).
  uint32_t threads = 1;
  uint64_t seed = 1;
  /// Optional CSV output path ("" = none).
  std::string csv_path;
  /// Optional JSON output path for WriteJsonReport ("" = none).
  std::string json_path;

  static ExperimentEnv FromOptions(const OptionParser& options);
};

/// One measured cell of a figure: an algorithm at one x-axis point.
struct Measurement {
  std::string series;   // e.g. "AdvEnum"
  std::string x_label;  // e.g. "r=100km"
  double seconds = 0.0;
  bool timed_out = false;
  MiningStats stats;
  uint64_t result_count = 0;   // #maximal cores or |maximum core|
  uint64_t result_size_max = 0;
  double result_size_avg = 0.0;

  /// "INF" when timed out, otherwise seconds with 3 decimals.
  std::string TimeString() const;
};

/// Accumulates measurements, prints a paper-style table (series as columns),
/// and optionally writes CSV.
class FigureReport {
 public:
  FigureReport(std::string figure_id, std::string title);

  void Add(Measurement m);

  /// Renders the table: one row per x point, one column per series.
  void Print() const;

  /// Writes all measurements as CSV rows.
  void WriteCsv(const std::string& path) const;

  /// Print() then WriteCsv(env.csv_path) when set.
  void Finish(const ExperimentEnv& env) const;

  const std::vector<Measurement>& measurements() const {
    return measurements_;
  }
  const std::string& figure_id() const { return figure_id_; }

 private:
  std::string figure_id_;
  std::string title_;
  std::vector<Measurement> measurements_;
};

/// Writes the checked-in BENCH_*.json format: bench identity + config
/// (including the measuring host's hardware concurrency, so scaling numbers
/// are interpretable) + one record per measurement across all `figures`,
/// with the per-tier bound counters and task-pool counters included.
void WriteJsonReport(const std::string& path, const std::string& bench,
                     const std::string& description,
                     const std::string& command, const ExperimentEnv& env,
                     const std::vector<const FigureReport*>& figures);

/// Converts a MaximalCoresResult / MaximumCoreResult into a Measurement.
Measurement MeasureEnum(const std::string& series, const std::string& x_label,
                        const MaximalCoresResult& result);
Measurement MeasureMax(const std::string& series, const std::string& x_label,
                       const MaximumCoreResult& result);

/// Builds (and caches per process) a paper-analogue dataset at env.scale
/// (quick mode shrinks it further). Names: brightkite/gowalla/dblp/pokec.
const Dataset& GetDataset(const std::string& name, const ExperimentEnv& env);

/// Resolves the paper's r-axis conventions: kilometers for the geo datasets
/// ("r_km") and top-permille calibration for the keyword datasets
/// ("r_permille", Sec 8.1). The returned value feeds Dataset::MakeOracle.
double ResolveThresholdKm(double km);
double ResolveThresholdPermille(const Dataset& dataset, double permille);

}  // namespace krcore

#endif  // KRCORE_BENCH_SUPPORT_EXPERIMENT_H_
