#ifndef KRCORE_BENCH_SUPPORT_VARIANTS_H_
#define KRCORE_BENCH_SUPPORT_VARIANTS_H_

#include <string>

#include "core/enumerate.h"
#include "core/maximum.h"

namespace krcore {

/// Builds EnumOptions for the paper's named enumeration variants:
/// "BasicEnum", "BE+CR", "BE+CR+ET", "AdvEnum", "AdvEnum-O" (degree order),
/// "AdvEnum-P" (best order, no advanced pruning).
EnumOptions MakeEnumVariant(const std::string& name, uint32_t k,
                            double timeout_seconds);

/// Builds MaxOptions for the paper's named maximum variants:
/// "BasicMax" / "AdvMax-UB" (naive |M|+|C| bound), "AdvMax",
/// "AdvMax-O" (degree order), "Color+Kcore", "|M|+|C|".
MaxOptions MakeMaxVariant(const std::string& name, uint32_t k,
                          double timeout_seconds);

}  // namespace krcore

#endif  // KRCORE_BENCH_SUPPORT_VARIANTS_H_
