#include "bench_support/variants.h"

#include "util/logging.h"

namespace krcore {

EnumOptions MakeEnumVariant(const std::string& name, uint32_t k,
                            double timeout_seconds) {
  EnumOptions o;
  o.k = k;
  o.deadline = Deadline::AfterSeconds(timeout_seconds);
  if (name == "BasicEnum" || name == "AdvEnum-P") {
    o.use_retention = false;
    o.use_early_termination = false;
    o.use_smart_maximal_check = false;
  } else if (name == "BE+CR") {
    o.use_retention = true;
    o.use_early_termination = false;
    o.use_smart_maximal_check = false;
  } else if (name == "BE+CR+ET") {
    o.use_retention = true;
    o.use_early_termination = true;
    o.use_smart_maximal_check = false;
  } else if (name == "AdvEnum") {
    // All defaults: every technique plus the best order.
  } else if (name == "AdvEnum-O") {
    o.order = VertexOrder::kDegree;
  } else {
    KRCORE_CHECK(false) << "unknown enum variant: " << name;
  }
  return o;
}

MaxOptions MakeMaxVariant(const std::string& name, uint32_t k,
                          double timeout_seconds) {
  MaxOptions o;
  o.k = k;
  o.deadline = Deadline::AfterSeconds(timeout_seconds);
  if (name == "BasicMax" || name == "AdvMax-UB" || name == "|M|+|C|") {
    o.bound = SizeBoundKind::kNaive;
  } else if (name == "AdvMax") {
    o.bound = SizeBoundKind::kDoubleKcore;
  } else if (name == "AdvMax-O") {
    o.bound = SizeBoundKind::kDoubleKcore;
    o.order = VertexOrder::kDegree;
  } else if (name == "Color+Kcore") {
    o.bound = SizeBoundKind::kColorPlusKcore;
  } else if (name == "DoubleKcore") {
    o.bound = SizeBoundKind::kDoubleKcore;
  } else {
    KRCORE_CHECK(false) << "unknown max variant: " << name;
  }
  return o;
}

}  // namespace krcore
