#include "bench_support/experiment.h"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "core/parallel.h"

#include "datasets/generators.h"
#include "similarity/threshold.h"
#include "util/logging.h"

namespace krcore {

ExperimentEnv ExperimentEnv::FromOptions(const OptionParser& options) {
  // Bench output is often piped to files; line-buffer stdout so progress is
  // visible while long sweeps (and INF cells) run.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  ExperimentEnv env;
  env.timeout_seconds = options.GetDouble("timeout", env.timeout_seconds);
  env.scale = options.GetDouble("scale", env.scale);
  env.quick = options.GetBool("quick", false);
  env.threads = static_cast<uint32_t>(options.GetInt("threads", env.threads));
  env.seed = options.GetInt("seed", env.seed);
  env.csv_path = options.GetString("csv", "");
  env.json_path = options.GetString("json", "");
  if (env.quick) {
    env.scale = std::min(env.scale, 0.15);
    env.timeout_seconds = std::min(env.timeout_seconds, 10.0);
  }
  return env;
}

std::string Measurement::TimeString() const {
  if (timed_out) return "INF";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  return buf;
}

FigureReport::FigureReport(std::string figure_id, std::string title)
    : figure_id_(std::move(figure_id)), title_(std::move(title)) {}

void FigureReport::Add(Measurement m) { measurements_.push_back(std::move(m)); }

void FigureReport::Print() const {
  std::cout << "\n=== " << figure_id_ << ": " << title_ << " ===\n";
  // Preserve first-seen order for both axes.
  std::vector<std::string> xs, series;
  for (const auto& m : measurements_) {
    if (std::find(xs.begin(), xs.end(), m.x_label) == xs.end()) {
      xs.push_back(m.x_label);
    }
    if (std::find(series.begin(), series.end(), m.series) == series.end()) {
      series.push_back(m.series);
    }
  }
  std::map<std::pair<std::string, std::string>, const Measurement*> cell;
  for (const auto& m : measurements_) cell[{m.x_label, m.series}] = &m;

  std::cout << "time(sec)";
  for (const auto& s : series) std::cout << "\t" << s;
  std::cout << "\n";
  for (const auto& x : xs) {
    std::cout << x;
    for (const auto& s : series) {
      auto it = cell.find({x, s});
      std::cout << "\t" << (it == cell.end() ? "-" : it->second->TimeString());
    }
    std::cout << "\n";
  }
  std::cout.flush();
}

void FigureReport::WriteCsv(const std::string& path) const {
  std::ofstream out(path, std::ios::app);
  if (!out) {
    KRCORE_LOG(Warning) << "cannot open csv " << path;
    return;
  }
  for (const auto& m : measurements_) {
    out << figure_id_ << "," << m.series << "," << m.x_label << ","
        << (m.timed_out ? "INF" : std::to_string(m.seconds)) << ","
        << m.result_count << "," << m.result_size_max << ","
        << m.result_size_avg << "," << m.stats.search_nodes << "\n";
  }
}

void FigureReport::Finish(const ExperimentEnv& env) const {
  Print();
  if (!env.csv_path.empty()) WriteCsv(env.csv_path);
}

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void WriteJsonReport(const std::string& path, const std::string& bench,
                     const std::string& description,
                     const std::string& command, const ExperimentEnv& env,
                     const std::vector<const FigureReport*>& figures) {
  std::ofstream out(path);
  if (!out) {
    KRCORE_LOG(Warning) << "cannot open json " << path;
    return;
  }
  std::time_t now = std::time(nullptr);
  char date[16] = "unknown";
  if (struct tm* tm = std::localtime(&now)) {
    std::strftime(date, sizeof(date), "%Y-%m-%d", tm);
  }
  out << "{\n"
      << "  \"bench\": \"" << JsonEscape(bench) << "\",\n"
      << "  \"description\": \"" << JsonEscape(description) << "\",\n"
      << "  \"command\": \"" << JsonEscape(command) << "\",\n"
      << "  \"config\": {\n"
      << "    \"scale\": " << env.scale << ",\n"
      << "    \"timeout_seconds\": " << env.timeout_seconds << ",\n"
      << "    \"seed\": " << env.seed << ",\n"
      << "    \"threads\": " << env.threads << ",\n"
      << "    \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n"
      << "    \"effective_threads\": "
      << ResolveThreadCount(env.threads, std::thread::hardware_concurrency())
      << ",\n"
#ifdef NDEBUG
      << "    \"build_type\": \"Release\",\n"
#else
      << "    \"build_type\": \"Debug\",\n"
#endif
      << "    \"compiler\": \"" << JsonEscape(__VERSION__) << "\"\n"
      << "  },\n"
      << "  \"recorded\": \"" << date << "\",\n"
      << "  \"measurements\": [";
  bool first = true;
  for (const FigureReport* fig : figures) {
    for (const auto& m : fig->measurements()) {
      out << (first ? "\n" : ",\n");
      first = false;
      out << "    {\n"
          << "      \"figure\": \"" << JsonEscape(fig->figure_id()) << "\",\n"
          << "      \"series\": \"" << JsonEscape(m.series) << "\",\n"
          << "      \"x\": \"" << JsonEscape(m.x_label) << "\",\n"
          << "      \"seconds\": " << m.seconds << ",\n"
          << "      \"timed_out\": " << (m.timed_out ? "true" : "false")
          << ",\n"
          << "      \"result_count\": " << m.result_count << ",\n"
          << "      \"result_size_max\": " << m.result_size_max << ",\n"
          << "      \"result_size_avg\": " << m.result_size_avg << ",\n"
          << "      \"search_nodes\": " << m.stats.search_nodes << ",\n"
          << "      \"bound_naive_prunes\": " << m.stats.bound_naive_prunes
          << ",\n"
          << "      \"bound_cache_hits\": " << m.stats.bound_cache_hits
          << ",\n"
          << "      \"bound_expensive_prunes\": "
          << m.stats.bound_expensive_prunes << ",\n"
          << "      \"bound_recomputes\": " << m.stats.bound_recomputes
          << ",\n"
          << "      \"tasks_spawned\": " << m.stats.tasks_spawned << ",\n"
          << "      \"task_steals\": " << m.stats.task_steals << ",\n"
          << "      \"prepare_pair_sweeps\": " << m.stats.prepare_pair_sweeps
          << ",\n"
          << "      \"prepare_derivations\": " << m.stats.prepare_derivations
          << ",\n"
          << "      \"derive_r_restrictions\": "
          << m.stats.derive_r_restrictions << ",\n"
          << "      \"score_filtered_pairs\": "
          << m.stats.score_filtered_pairs << ",\n"
          << "      \"oracle_calls\": " << m.stats.oracle_calls << "\n"
          << "    }";
    }
  }
  out << "\n  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

Measurement MeasureEnum(const std::string& series, const std::string& x_label,
                        const MaximalCoresResult& result) {
  Measurement m;
  m.series = series;
  m.x_label = x_label;
  m.seconds = result.stats.seconds;
  m.timed_out = result.status.IsDeadlineExceeded();
  m.stats = result.stats;
  m.result_count = result.cores.size();
  uint64_t total = 0;
  for (const auto& c : result.cores) {
    m.result_size_max = std::max<uint64_t>(m.result_size_max, c.size());
    total += c.size();
  }
  m.result_size_avg = result.cores.empty()
                          ? 0.0
                          : static_cast<double>(total) / result.cores.size();
  return m;
}

Measurement MeasureMax(const std::string& series, const std::string& x_label,
                       const MaximumCoreResult& result) {
  Measurement m;
  m.series = series;
  m.x_label = x_label;
  m.seconds = result.stats.seconds;
  m.timed_out = result.status.IsDeadlineExceeded();
  m.stats = result.stats;
  m.result_count = result.best.size();
  m.result_size_max = result.best.size();
  m.result_size_avg = static_cast<double>(result.best.size());
  return m;
}

const Dataset& GetDataset(const std::string& name, const ExperimentEnv& env) {
  static std::map<std::string, Dataset>* cache =
      new std::map<std::string, Dataset>();
  std::ostringstream key;
  key << name << "@" << env.scale << "#" << env.seed;
  auto it = cache->find(key.str());
  if (it == cache->end()) {
    KRCORE_LOG(Info) << "generating dataset " << name << " scale=" << env.scale;
    Dataset d = MakePaperAnalogue(name, env.scale, env.seed);
    KRCORE_LOG(Info) << d.StatsString();
    it = cache->emplace(key.str(), std::move(d)).first;
  }
  return it->second;
}

double ResolveThresholdKm(double km) { return km; }

double ResolveThresholdPermille(const Dataset& dataset, double permille) {
  SimilarityOracle probe = dataset.MakeOracle(0.0);
  return TopPermilleThreshold(probe, dataset.graph.num_vertices(), permille);
}

}  // namespace krcore
